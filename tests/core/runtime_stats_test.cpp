// Observability substrate: the power-of-two latency histogram's bucket
// layout, merge and quantile math against a scalar reference, and the
// end-to-end guarantee that a stats snapshot of an AsyncIngest run is
// deterministic — the same trace produces the same final per-shard
// counters for ANY worker count, with the histogram accounting for every
// submitted line. (ctest -L observability.)
#include "core/runtime_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/async_ingest.h"
#include "core/lstm_detector.h"
#include "util/json.h"

namespace nfv::core {
namespace {

TEST(LatencyHistogramTest, BucketLayoutIdentities) {
  // Bucket 0 holds exactly 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 3u);
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_floor(i)),
              i)
        << "floor of bucket " << i;
    EXPECT_EQ(
        LatencyHistogram::bucket_index(LatencyHistogram::bucket_ceil(i) - 1),
        i)
        << "last value of bucket " << i;
  }
  // Everything past the top bucket's floor clamps into the top bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
  // Boundaries tile the line: ceil(i) == floor(i+1).
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_ceil(i),
              LatencyHistogram::bucket_floor(i + 1));
  }
}

TEST(LatencyHistogramTest, RecordClearAndMergeAreBucketwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 1023ull}) a.record(v);
  for (std::uint64_t v : {7ull, 100000ull}) b.record(v);

  HistogramSnapshot sa;
  sa.buckets = a.buckets();
  HistogramSnapshot sb;
  sb.buckets = b.buckets();
  EXPECT_EQ(sa.total(), 5u);
  EXPECT_EQ(sb.total(), 2u);

  HistogramSnapshot merged = sa;
  merged.merge(sb);
  EXPECT_EQ(merged.total(), 7u);
  for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
    EXPECT_EQ(merged.buckets[i], sa.buckets[i] + sb.buckets[i]) << i;
  }

  a.clear();
  sa.buckets = a.buckets();
  EXPECT_EQ(sa.total(), 0u);
}

TEST(HistogramSnapshotTest, QuantileEdgeCases) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  // One value: every quantile lands in that value's bucket.
  LatencyHistogram one;
  one.record(777);
  HistogramSnapshot s;
  s.buckets = one.buckets();
  const std::size_t bucket = LatencyHistogram::bucket_index(777);
  for (double q : {0.0, 0.5, 0.999, 1.0}) {
    EXPECT_GE(s.quantile(q),
              static_cast<double>(LatencyHistogram::bucket_floor(bucket)));
    EXPECT_LE(s.quantile(q),
              static_cast<double>(LatencyHistogram::bucket_ceil(bucket)));
  }
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_EQ(s.quantile(-1.0), s.quantile(0.0));
  EXPECT_EQ(s.quantile(2.0), s.quantile(1.0));
}

TEST(HistogramSnapshotTest, QuantileTracksScalarReferenceWithinOneBucket) {
  // Deterministic pseudo-random latencies spanning many octaves.
  std::vector<std::uint64_t> values;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x % (1ull << (5 + i % 30)));
  }
  LatencyHistogram hist;
  for (const std::uint64_t v : values) hist.record(v);
  HistogramSnapshot snap;
  snap.buckets = hist.buckets();
  ASSERT_EQ(snap.total(), values.size());

  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    // Scalar reference (util::quantile convention): fractional rank
    // q*(n-1); the histogram answer must stay within the bucket span of
    // the two order statistics bracketing that rank.
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::uint64_t lo =
        sorted[static_cast<std::size_t>(std::floor(rank))];
    const std::uint64_t hi = sorted[static_cast<std::size_t>(std::ceil(rank))];
    const double got = snap.quantile(q);
    EXPECT_GE(got, static_cast<double>(LatencyHistogram::bucket_floor(
                       LatencyHistogram::bucket_index(lo))))
        << "q=" << q;
    EXPECT_LE(got, static_cast<double>(LatencyHistogram::bucket_ceil(
                       LatencyHistogram::bucket_index(hi))))
        << "q=" << q;
  }
}

// ---------------------------------------------------------------------
// Snapshot-under-load determinism. A trivial deterministic detector keeps
// the test about the runtime's accounting, not about model math.
// ---------------------------------------------------------------------

class StepDetector final : public AnomalyDetector {
 public:
  void fit(std::span<const LogView>, std::size_t) override {}
  void update(std::span<const LogView>, std::size_t) override {}
  void adapt(std::span<const LogView>, std::size_t) override {}
  std::vector<ScoredEvent> score(LogView logs,
                                 std::size_t /*vocab*/) const override {
    std::vector<ScoredEvent> events;
    events.reserve(logs.size());
    for (const auto& log : logs) {
      events.push_back({log.time, log.template_id >= 100 ? 50.0 : 0.0});
    }
    return events;
  }
  bool trained() const override { return true; }
  DetectorKind kind() const override { return DetectorKind::kLstm; }
  EventGranularity granularity() const override {
    return EventGranularity::kPerLog;
  }
};

logproc::ParsedLog trace_log(std::size_t vpe, std::size_t i) {
  logproc::ParsedLog log;
  log.time = nfv::util::SimTime{static_cast<std::int64_t>(i) * 30};
  // Occasional adjacent pairs of "anomalous" ids (>= 100) so warning
  // clusters actually form; everything else cycles benign ids.
  if (i % 41 == 20 || i % 41 == 21) {
    log.template_id = static_cast<std::int32_t>(100 + vpe);
  } else {
    log.template_id = static_cast<std::int32_t>((i + vpe * 3) % 17);
  }
  return log;
}

TEST(RuntimeStatsSnapshotTest, SameTraceSameFinalCountersForAnyWorkerCount) {
  constexpr std::size_t kVpes = 5;
  constexpr std::size_t kLines = 600;
  StepDetector detector;

  std::vector<ShardStatsSnapshot> reference;
  for (const std::size_t workers : {1u, 2u, 3u}) {
    AsyncIngestConfig config;
    config.workers = workers;
    config.flush_batch = 16;
    config.queue_capacity = 64;
    AsyncIngest ingest(&detector, config);
    StreamMonitorConfig monitor;
    monitor.threshold = 10.0;
    monitor.window = 4;
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.add_shard(static_cast<std::int32_t>(v), monitor);
    }
    ingest.start();
    for (std::size_t i = 0; i < kLines; ++i) {
      for (std::size_t v = 0; v < kVpes; ++v) {
        ingest.submit_parsed(v, trace_log(v, i));
      }
    }
    ingest.flush();

    // Queryable while running: the post-flush snapshot already has every
    // line accounted for, before stop() was ever called.
    const RuntimeStatsSnapshot live = ingest.snapshot();
    EXPECT_EQ(live.totals.lines_scored, kVpes * kLines);
    ingest.stop();

    const RuntimeStatsSnapshot snap = ingest.snapshot();
    EXPECT_EQ(snap.totals.lines_submitted, kVpes * kLines);
    EXPECT_EQ(snap.totals.lines_scored, kVpes * kLines);
    ASSERT_EQ(snap.shards.size(), kVpes);
    ASSERT_EQ(snap.workers.size(), std::min(workers, kVpes));

    std::uint64_t worker_lines = 0;
    for (const WorkerStatsSnapshot& w : snap.workers) {
      EXPECT_GT(w.epoch, 0u) << "worker " << w.worker;
      EXPECT_EQ(w.queue.depth, 0u) << "worker " << w.worker;
      EXPECT_GT(w.queue.capacity, 0u) << "worker " << w.worker;
      worker_lines += w.lines;
    }
    EXPECT_EQ(worker_lines, kVpes * kLines);

    std::uint64_t warnings = 0;
    for (std::size_t v = 0; v < kVpes; ++v) {
      const ShardStatsSnapshot& shard = snap.shards[v];
      EXPECT_EQ(shard.shard, v);
      EXPECT_EQ(shard.vpe, static_cast<std::int32_t>(v));
      EXPECT_EQ(shard.worker, v % snap.workers.size());
      EXPECT_FALSE(shard.paused);
      EXPECT_EQ(shard.held, 0u);
      // Every submitted line was ingested and latency-recorded.
      EXPECT_EQ(shard.lines, kLines) << "shard " << v;
      EXPECT_EQ(shard.latency.total(), kLines) << "shard " << v;
      warnings += shard.warnings;
    }
    EXPECT_GT(warnings, 0u) << "vacuous trace: no warning clusters";
    EXPECT_EQ(warnings, snap.totals.warnings_published);
    EXPECT_EQ(snap.merged_latency().total(), kVpes * kLines);

    // Determinism across worker counts: identical per-shard counters.
    if (reference.empty()) {
      reference = snap.shards;
    } else {
      for (std::size_t v = 0; v < kVpes; ++v) {
        EXPECT_EQ(snap.shards[v].lines, reference[v].lines)
            << "workers=" << workers << " shard " << v;
        EXPECT_EQ(snap.shards[v].warnings, reference[v].warnings)
            << "workers=" << workers << " shard " << v;
        EXPECT_EQ(snap.shards[v].latency.total(), reference[v].latency.total())
            << "workers=" << workers << " shard " << v;
      }
    }
  }
}

TEST(RuntimeStatsSnapshotTest, UninstrumentedRunKeepsCountersDropsLatency) {
  StepDetector detector;
  AsyncIngestConfig config;
  config.workers = 2;
  config.instrument = false;
  AsyncIngest ingest(&detector, config);
  StreamMonitorConfig monitor;
  monitor.threshold = 10.0;
  monitor.window = 4;
  for (std::size_t v = 0; v < 3; ++v) {
    ingest.add_shard(static_cast<std::int32_t>(v), monitor);
  }
  ingest.start();
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t v = 0; v < 3; ++v) ingest.submit_parsed(v, trace_log(v, i));
  }
  ingest.flush();
  ingest.stop();
  const RuntimeStatsSnapshot snap = ingest.snapshot();
  EXPECT_EQ(snap.totals.lines_scored, 600u);
  for (const ShardStatsSnapshot& shard : snap.shards) {
    EXPECT_EQ(shard.lines, 200u);            // counters stay on
    EXPECT_EQ(shard.latency.total(), 0u);    // histograms gated off
  }
}

TEST(RuntimeStatsSnapshotTest, JsonDumpRoundTripsThroughTheParser) {
  StepDetector detector;
  AsyncIngestConfig config;
  config.workers = 2;
  AsyncIngest ingest(&detector, config);
  StreamMonitorConfig monitor;
  monitor.threshold = 10.0;
  monitor.window = 4;
  for (std::size_t v = 0; v < 3; ++v) {
    ingest.add_shard(static_cast<std::int32_t>(v), monitor);
  }
  ingest.start();
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t v = 0; v < 3; ++v) ingest.submit_parsed(v, trace_log(v, i));
  }
  ingest.flush();
  const std::string json = ingest.stats_json();
  ingest.stop();

  std::string error;
  const auto doc = nfv::util::json_parse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error << "\n" << json;
  const nfv::util::JsonValue* totals = doc->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->find("lines_scored")->number, 900.0);
  const nfv::util::JsonValue* shards = doc->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->items.size(), 3u);
  for (const nfv::util::JsonValue& shard : shards->items) {
    EXPECT_EQ(shard.find("lines")->number, 300.0);
    ASSERT_NE(shard.find("latency"), nullptr);
    EXPECT_EQ(shard.find("latency")->find("count")->number, 300.0);
  }
  const nfv::util::JsonValue* latency = doc->find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("count")->number, 900.0);
  EXPECT_GT(latency->find("buckets")->items.size(), 0u);
}

// Fleet-memory aggregates: the snapshot and its JSON dump must report
// the shared structures (arena, forest) exactly ONCE fleet-wide — never
// re-summed per shard — plus per-shard tree bytes and the combined
// bytes/vPE figure, in every sharing mode.
TEST(RuntimeStatsSnapshotTest, FleetMemoryAggregatesInSnapshotAndJson) {
  StepDetector detector;
  for (const bool shared : {true, false}) {
    AsyncIngestConfig config;
    config.workers = 2;
    config.share_token_arena = shared;
    config.share_template_forest = shared;
    AsyncIngest ingest(&detector, config);
    StreamMonitorConfig monitor;
    monitor.threshold = 10.0;
    monitor.window = 4;
    for (std::size_t v = 0; v < 3; ++v) {
      ingest.add_shard(static_cast<std::int32_t>(v), monitor);
    }
    ingest.start();
    // Raw lines (not pre-parsed) so the shard trees actually mine and
    // the token arena fills.
    for (std::size_t i = 0; i < 200; ++i) {
      for (std::size_t v = 0; v < 3; ++v) {
        ingest.submit(v, nfv::util::SimTime{static_cast<std::int64_t>(i)},
                      "daemon restarted peer 10.0." + std::to_string(v) +
                          "." + std::to_string(i % 7) + " session up");
      }
    }
    ingest.flush();
    const RuntimeStatsSnapshot snap = ingest.snapshot();
    const std::string json = ingest.stats_json();
    ingest.stop();

    EXPECT_EQ(snap.memory.shared_arena, shared);
    EXPECT_EQ(snap.memory.shards, 3u);
    std::uint64_t total = 0, max_tree = 0;
    for (const ShardStatsSnapshot& shard : snap.shards) {
      EXPECT_GT(shard.tree_bytes, 0u) << "shared=" << shared;
      total += shard.tree_bytes;
      max_tree = std::max(max_tree, shard.tree_bytes);
    }
    EXPECT_EQ(snap.memory.tree_bytes_total, total);
    EXPECT_EQ(snap.memory.tree_bytes_max, max_tree);
    if (shared) {
      ASSERT_NE(ingest.token_arena(), nullptr);
      EXPECT_GT(snap.memory.arena_tokens, 2u);
      EXPECT_GT(snap.memory.arena_bytes, 0u);
      ASSERT_NE(ingest.template_forest(), nullptr);
      EXPECT_TRUE(snap.memory.shared_forest);
      EXPECT_GT(snap.memory.forest_templates, 0u);
      EXPECT_GT(snap.memory.forest_bytes, 0u);
      // Counted once: the aggregates are the live structures' own byte
      // counters, independent of the shard count.
      EXPECT_EQ(snap.memory.arena_bytes, ingest.token_arena()->bytes());
      EXPECT_EQ(snap.memory.forest_bytes, ingest.template_forest()->bytes());
    } else {
      EXPECT_EQ(ingest.token_arena(), nullptr);
      EXPECT_EQ(snap.memory.arena_tokens, 0u);
      EXPECT_EQ(snap.memory.arena_bytes, 0u);
      EXPECT_EQ(ingest.template_forest(), nullptr);
      EXPECT_FALSE(snap.memory.shared_forest);
      EXPECT_EQ(snap.memory.forest_templates, 0u);
      EXPECT_EQ(snap.memory.forest_bytes, 0u);
    }
    // bytes/vPE amortizes each shared structure exactly once over the
    // fleet: (arena + forest + per-shard trees) / shards.
    EXPECT_NEAR(snap.memory.bytes_per_vpe,
                static_cast<double>(snap.memory.arena_bytes +
                                    snap.memory.forest_bytes + total) /
                    3.0,
                1.0);

    std::string error;
    const auto doc = nfv::util::json_parse(json, &error);
    ASSERT_TRUE(doc.has_value()) << error << "\n" << json;
    const nfv::util::JsonValue* memory = doc->find("memory");
    ASSERT_NE(memory, nullptr);
    EXPECT_EQ(memory->find("shared_arena")->boolean, shared);
    EXPECT_EQ(memory->find("shared_forest")->boolean, shared);
    EXPECT_EQ(memory->find("forest_bytes")->number,
              static_cast<double>(snap.memory.forest_bytes));
    EXPECT_EQ(memory->find("forest_templates")->number,
              static_cast<double>(snap.memory.forest_templates));
    EXPECT_EQ(memory->find("tree_bytes_total")->number,
              static_cast<double>(total));
    // Round trip: the parsed bytes_per_vpe reproduces the once-counted
    // aggregate formula bit-for-bit within JSON double precision.
    EXPECT_NEAR(memory->find("bytes_per_vpe")->number,
                snap.memory.bytes_per_vpe, 1e-6);
    const nfv::util::JsonValue* shards = doc->find("shards");
    ASSERT_NE(shards, nullptr);
    for (const nfv::util::JsonValue& shard : shards->items) {
      EXPECT_GT(shard.find("tree_bytes")->number, 0.0);
    }
  }
}

TEST(RuntimeStatsSnapshotTest, EmptySnapshotJsonRoundTripsWithFiniteFields) {
  // A default-constructed snapshot models a never-started / zero-shard
  // runtime: bytes_per_vpe must finalize to 0.0 (not NaN from 0/0) and
  // the JSON dump must parse cleanly with every field present.
  RuntimeStatsSnapshot empty;
  empty.memory.finalize_bytes_per_vpe();
  EXPECT_EQ(empty.memory.shards, 0u);
  EXPECT_EQ(empty.memory.bytes_per_vpe, 0.0);
  EXPECT_TRUE(std::isfinite(empty.memory.bytes_per_vpe));

  const std::string json = to_json(empty);
  std::string error;
  const auto doc = nfv::util::json_parse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error << "\n" << json;
  const nfv::util::JsonValue* memory = doc->find("memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(memory->find("bytes_per_vpe")->number, 0.0);
  const nfv::util::JsonValue* retrain = doc->find("retrain");
  ASSERT_NE(retrain, nullptr);
  EXPECT_FALSE(retrain->find("enabled")->boolean);
  EXPECT_EQ(retrain->find("samples_seen")->number, 0.0);
  EXPECT_EQ(retrain->find("swaps")->number, 0.0);
  EXPECT_EQ(retrain->find("train_seconds")->number, 0.0);
}

TEST(RuntimeStatsSnapshotTest, NonFiniteBytesPerVpeStillDumpsParseableJson) {
  // Belt and braces: even a hand-built snapshot carrying NaN/inf (the
  // old zero-shard division) must not poison the JSON document.
  for (const double poison : {std::nan(""),
                              std::numeric_limits<double>::infinity()}) {
    RuntimeStatsSnapshot snap;
    snap.memory.bytes_per_vpe = poison;
    std::string error;
    const auto doc = nfv::util::json_parse(to_json(snap), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->find("memory")->find("bytes_per_vpe")->number, 0.0);
  }
}

TEST(RuntimeStatsSnapshotTest, ConstructedButNeverStartedRuntimeSnapshots) {
  // An AsyncIngest that registered no shards and never started must
  // still produce a finite, parseable stats cut.
  LstmDetectorConfig config;
  config.window = 3;
  config.embed_dim = 4;
  config.hidden = 4;
  config.initial_epochs = 1;
  config.oversample = false;
  LstmDetector detector(config);
  std::vector<logproc::ParsedLog> stream;
  for (std::size_t i = 0; i < 60; ++i) {
    stream.push_back({nfv::util::SimTime{static_cast<std::int64_t>(i) * 30},
                      static_cast<std::int32_t>(i % 4)});
  }
  const std::vector<LogView> views{stream};
  detector.fit(views, 4);

  AsyncIngest ingest(&detector);
  const RuntimeStatsSnapshot snap = ingest.snapshot();
  EXPECT_EQ(snap.memory.shards, 0u);
  EXPECT_EQ(snap.memory.bytes_per_vpe, 0.0);
  EXPECT_TRUE(std::isfinite(snap.memory.bytes_per_vpe));
  std::string error;
  ASSERT_TRUE(nfv::util::json_parse(ingest.stats_json(), &error).has_value())
      << error;
}

}  // namespace
}  // namespace nfv::core
