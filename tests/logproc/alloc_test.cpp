// Steady-state allocation audit for the template-mining fast path.
//
// Replaces the global allocation functions with counting versions and
// asserts that SignatureTree::learn() and match() perform ZERO heap
// allocations once the tree is warm (templates discovered, stable tokens
// interned, scratch grown) — even when every line carries fresh variable
// field values. This is the acceptance criterion for the zero-allocation
// fast path; it lives in its own test binary because the counting
// operator new/delete replacement is process-global.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "logproc/signature_tree.h"
#include "util/interner.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace nfv::logproc {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// Realistic per-line corpus: fixed template shapes, variable fields (IPs,
/// indices, interface units) parameterized by `salt` so two corpora share
/// every stable token but no variable value.
std::vector<std::string> make_corpus(int salt) {
  std::vector<std::string> lines;
  for (int i = 0; i < 64; ++i) {
    const std::string n = std::to_string(salt * 1000 + i);
    lines.push_back("rpd[" + n + "]: bgp peer 10.7." + n +
                    ".1 (AS 65" + std::to_string(i) + ") state changed to Idle");
    lines.push_back("mib2d[" + n + "]: SNMP_TRAP_LINK_DOWN ifIndex " + n +
                    " ifName ge-0/0/" + std::to_string(i % 48) + "." + n);
    lines.push_back("chassisd fan tray " + std::to_string(i % 8) + " rpm " +
                    n + " deviates from commanded speed");
    lines.push_back("kernel: session 0x" + n +
                    " to core" + std::to_string(i % 4) + ".region1 torn down");
  }
  return lines;
}

TEST(SteadyStateAllocations, LearnIsAllocationFreeOnWarmTree) {
  SignatureTree tree;
  // Warm with one corpus: discovers templates, interns every stable token,
  // grows the tokenization scratch and leaf table.
  const std::vector<std::string> warmup = make_corpus(1);
  for (const std::string& line : warmup) tree.learn(line);
  const std::size_t templates = tree.size();
  ASSERT_GT(templates, 0u);

  // Second corpus: same shapes, entirely fresh variable values — built
  // BEFORE the counting window so its own allocations don't count.
  const std::vector<std::string> fresh = make_corpus(2);

  std::int64_t sink = 0;
  const std::uint64_t before = allocations();
  for (const std::string& line : fresh) sink += tree.learn(line);
  const std::uint64_t after = allocations();

  EXPECT_EQ(after - before, 0u) << "learn() allocated on a warm tree";
  EXPECT_GE(sink, 0);  // keep the loop observable
  EXPECT_EQ(tree.size(), templates) << "fresh values minted new templates";
}

TEST(SteadyStateAllocations, MatchIsAllocationFree) {
  SignatureTree tree;
  const std::vector<std::string> warmup = make_corpus(3);
  for (const std::string& line : warmup) tree.learn(line);
  const std::vector<std::string> fresh = make_corpus(4);
  // A line with unseen STABLE tokens exercises the interner miss path,
  // which must not intern (and so must not allocate) during match().
  const std::string unseen =
      "wholly unseen stable words that match nothing at all";

  std::int64_t sink = 0;
  const std::uint64_t before = allocations();
  for (const std::string& line : fresh) sink += tree.match(line);
  for (int i = 0; i < 100; ++i) sink += tree.match(unseen);
  const std::uint64_t after = allocations();

  EXPECT_EQ(after - before, 0u) << "match() allocated";
  EXPECT_NE(sink, 0);
}

// The shared-arena mode must preserve the zero-allocation steady state:
// a warm tree attached to the fleet-wide token arena resolves every
// token lock-free from already-published entries and allocates nothing,
// even on lines whose variable values (and interner-miss probes) are
// entirely fresh.
TEST(SteadyStateAllocations, SharedArenaLearnAndMatchAreAllocationFree) {
  nfv::util::SharedInterner arena;
  SignatureTree tree(SignatureTreeConfig{}, &arena);
  const std::vector<std::string> warmup = make_corpus(5);
  for (const std::string& line : warmup) tree.learn(line);
  const std::size_t templates = tree.size();
  ASSERT_GT(templates, 0u);

  const std::vector<std::string> fresh = make_corpus(6);
  const std::string unseen =
      "wholly unseen stable words that match nothing at all";

  std::int64_t sink = 0;
  const std::uint64_t before = allocations();
  for (const std::string& line : fresh) sink += tree.learn(line);
  for (const std::string& line : fresh) sink += tree.match(line);
  for (int i = 0; i < 100; ++i) sink += tree.match(unseen);
  const std::uint64_t after = allocations();

  EXPECT_EQ(after - before, 0u) << "shared-arena warm path allocated";
  EXPECT_NE(sink, 0);
  EXPECT_EQ(tree.size(), templates) << "fresh values minted new templates";
}

// The shared-forest mode must preserve it too: a warm tree whose
// templates live as immutable nodes in the fleet-wide forest resolves
// every template span lock-free and allocates nothing — fresh variable
// values merge at score 1.0, so neither the forest's admission path nor
// the copy-on-write divergence path runs in steady state.
TEST(SteadyStateAllocations, SharedForestLearnAndMatchAreAllocationFree) {
  nfv::util::SharedInterner arena;
  SharedSignatureForest forest(&arena);
  SignatureTree tree(SignatureTreeConfig{}, &arena, &forest);
  const std::vector<std::string> warmup = make_corpus(7);
  for (const std::string& line : warmup) tree.learn(line);
  const std::size_t templates = tree.size();
  ASSERT_GT(templates, 0u);
  ASSERT_GT(forest.size(), 0u);  // templates actually landed in the forest

  const std::vector<std::string> fresh = make_corpus(8);
  const std::string unseen =
      "wholly unseen stable words that match nothing at all";

  std::int64_t sink = 0;
  const std::uint64_t before = allocations();
  for (const std::string& line : fresh) sink += tree.learn(line);
  for (const std::string& line : fresh) sink += tree.match(line);
  for (int i = 0; i < 100; ++i) sink += tree.match(unseen);
  const std::uint64_t after = allocations();

  EXPECT_EQ(after - before, 0u) << "shared-forest warm path allocated";
  EXPECT_NE(sink, 0);
  EXPECT_EQ(tree.size(), templates) << "fresh values minted new templates";
}

// Sanity check that the counting hook itself works — otherwise the zero
// deltas above would be vacuous.
TEST(SteadyStateAllocations, HookCountsColdLearns) {
  const std::uint64_t before = allocations();
  SignatureTree tree;
  tree.learn("cold path definitely allocates for new templates");
  const std::uint64_t after = allocations();
  EXPECT_GT(after - before, 0u);
}

}  // namespace
}  // namespace nfv::logproc
