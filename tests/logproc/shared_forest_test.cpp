// SharedSignatureForest: fleet-wide template dedup with copy-on-write
// divergence. Pins the contracts the miner-equivalence suite does not
// cover directly: identically-primed trees share one forest node per
// template (fleet-stable ids), trees that diverge keep their LOCAL ids
// stable while their fleet ids move, same-way divergence re-dedups,
// capacity caps spill to per-tree private nodes without changing what
// is mined, and concurrent multi-tree admission / lock-free matching
// is race-free (the stress tests are what tools/ci.sh runs under
// ThreadSanitizer: ctest -L forest).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "logproc/shared_forest.h"
#include "logproc/signature_tree.h"
#include "util/interner.h"

namespace nfv::logproc {
namespace {

/// Deterministic multi-template corpus. Variable fields rotate with `i`;
/// the rotating STABLE words ("alpha".."delta") force disagreement at a
/// stable position, so replaying the corpus exercises generalization
/// (and, on a forest tree, the copy-on-write path), not just admission.
std::vector<std::string> stress_corpus() {
  static const char* kPorts[] = {"alpha", "beta", "gamma", "delta"};
  std::vector<std::string> lines;
  for (int i = 0; i < 150; ++i) {
    const std::string n = std::to_string(i);
    lines.push_back("bgp peer 10.0." + n + ".1 state changed to Idle");
    lines.push_back("link flap on port " + std::string(kPorts[i % 4]) +
                    " detected at " + n);
    lines.push_back("fan tray " + std::to_string(i % 8) + " rpm " + n +
                    " deviates from commanded speed");
    lines.push_back("session 0x" + n + " torn down by peer " +
                    std::string(kPorts[(i + 1) % 4]));
  }
  return lines;
}

/// A second corpus with entirely different template shapes (different
/// token counts and heads), for admission-vs-match races.
std::vector<std::string> writer_corpus() {
  std::vector<std::string> lines;
  for (int i = 0; i < 150; ++i) {
    const std::string n = std::to_string(i);
    lines.push_back("ospf neighbor " + n + " on area zero went down hard");
    lines.push_back("license usage for feature slot" + n + " exceeded");
    lines.push_back("cli commit confirmed by user operator" + n + " rolled back");
  }
  return lines;
}

TEST(SharedForestTest, IdenticallyPrimedTreesShareEveryNode) {
  nfv::util::SharedInterner arena;
  SharedSignatureForest forest(&arena);
  SignatureTree a(SignatureTreeConfig{}, &arena, &forest);
  SignatureTree b(SignatureTreeConfig{}, &arena, &forest);
  const std::vector<std::string> lines = stress_corpus();
  for (const std::string& line : lines) {
    ASSERT_EQ(a.learn(line), b.learn(line));
  }
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  // Every template is forest-backed (no private token ids, default caps)
  // and both trees resolve each one to the SAME fleet-stable node.
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    ASSERT_NE(a.fleet_template_id(id), SignatureTree::kNoFleetId)
        << "template " << i;
    EXPECT_EQ(a.fleet_template_id(id), b.fleet_template_id(id))
        << "template " << i;
    EXPECT_EQ(a.pattern(id), b.pattern(id)) << "template " << i;
  }
  EXPECT_EQ(a.private_template_count(), 0u);
  EXPECT_EQ(b.private_template_count(), 0u);
  // Shared once: live nodes are deduped across the two trees. (The
  // forest may also hold earlier generalization stages — admissions are
  // append-only — but never two trees' worth of live templates.)
  EXPECT_GE(forest.size(), a.size());
  EXPECT_LT(forest.size(), 2 * a.size());
}

TEST(SharedForestTest, DivergenceKeepsLocalIdsStableAndRededups) {
  nfv::util::SharedInterner arena;
  SharedSignatureForest forest(&arena);
  SignatureTree a(SignatureTreeConfig{}, &arena, &forest);
  SignatureTree b(SignatureTreeConfig{}, &arena, &forest);
  SignatureTree c(SignatureTreeConfig{}, &arena, &forest);

  // All three vPEs mine the same base template: one shared node.
  const std::string base = "link flap on port alpha detected now";
  ASSERT_EQ(a.learn(base), 0);
  ASSERT_EQ(b.learn(base), 0);
  ASSERT_EQ(c.learn(base), 0);
  const std::uint32_t base_fleet = a.fleet_template_id(0);
  ASSERT_NE(base_fleet, SignatureTree::kNoFleetId);
  EXPECT_EQ(b.fleet_template_id(0), base_fleet);
  EXPECT_EQ(c.fleet_template_id(0), base_fleet);
  EXPECT_EQ(forest.size(), 1u);

  // a and c generalize the port position; b generalizes the tail word.
  ASSERT_EQ(a.learn("link flap on port beta detected now"), 0);
  ASSERT_EQ(b.learn("link flap on port alpha detected later"), 0);
  ASSERT_EQ(c.learn("link flap on port gamma detected now"), 0);

  // Local template ids never moved; the fleet ids did — each diverged
  // tree re-interned its generalized sequence as a NEW immutable node.
  const std::uint32_t a_fleet = a.fleet_template_id(0);
  const std::uint32_t b_fleet = b.fleet_template_id(0);
  ASSERT_NE(a_fleet, SignatureTree::kNoFleetId);
  ASSERT_NE(b_fleet, SignatureTree::kNoFleetId);
  EXPECT_NE(a_fleet, base_fleet);
  EXPECT_NE(b_fleet, base_fleet);
  EXPECT_NE(a_fleet, b_fleet);  // different generalizations, different nodes
  EXPECT_NE(a.pattern(0), b.pattern(0));

  // Two vPEs diverging the SAME way dedup onto the same new node.
  EXPECT_EQ(c.fleet_template_id(0), a_fleet);
  EXPECT_EQ(c.pattern(0), a.pattern(0));

  // Each tree mined exactly what a fully private tree would have.
  SignatureTree private_a;
  private_a.learn(base);
  private_a.learn("link flap on port beta detected now");
  EXPECT_EQ(a.pattern(0), private_a.pattern(0));
  SignatureTree private_b;
  private_b.learn(base);
  private_b.learn("link flap on port alpha detected later");
  EXPECT_EQ(b.pattern(0), private_b.pattern(0));

  // Match counts are per-vPE state, untouched by the sharing.
  EXPECT_EQ(a.match_count(0), 2u);
  EXPECT_EQ(b.match_count(0), 2u);
  // The base node is immutable: it is still published in the forest
  // even though no tree's live template points at it any more.
  const SharedSignatureForest* f = a.forest();
  ASSERT_NE(f, nullptr);
  EXPECT_GE(f->size(), 3u);
  EXPECT_GT(f->view(base_fleet).length, 0u);
}

TEST(SharedForestTest, CapRejectionSpillsToPrivateNodesWithoutChangingMining) {
  nfv::util::SharedInterner arena;
  SharedSignatureForest::Config config;
  config.max_templates = 1;  // everything after the first admission spills
  SharedSignatureForest forest(&arena, config);
  SignatureTree tree(SignatureTreeConfig{}, &arena, &forest);
  SignatureTree private_tree;

  const std::vector<std::string> lines = stress_corpus();
  for (const std::string& line : lines) {
    ASSERT_EQ(tree.learn(line), private_tree.learn(line)) << line;
  }
  ASSERT_GT(tree.size(), 1u);
  // First template landed in the forest; the rest were rejected by the
  // cap and live in the tree's private node range.
  EXPECT_EQ(forest.size(), 1u);
  EXPECT_GT(forest.rejected(), 0u);
  EXPECT_GT(tree.private_template_count(), 0u);
  std::size_t private_backed = 0;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    if (tree.fleet_template_id(id) == SignatureTree::kNoFleetId) {
      ++private_backed;
    }
    // Spilling never changes WHAT is mined, only where it is stored.
    EXPECT_EQ(tree.pattern(id), private_tree.pattern(id)) << "template " << i;
    EXPECT_EQ(tree.match_count(id), private_tree.match_count(id))
        << "template " << i;
  }
  EXPECT_EQ(private_backed, tree.size() - 1);
}

// N per-vPE trees replay the SAME corpus concurrently, racing first-
// sight forest admissions (including copy-on-write re-interns from the
// generalization path). Mining is deterministic per tree, so all trees
// must end identical to a sequentially-built one — and must agree on
// every fleet-stable node id regardless of which thread won each
// admission race. TSan-clean.
TEST(SharedForestStressTest, ConcurrentTreesAgreeOnFleetIds) {
  constexpr std::size_t kThreads = 4;
  const std::vector<std::string> lines = stress_corpus();

  nfv::util::SharedInterner arena;
  SharedSignatureForest forest(&arena);
  std::vector<SignatureTree> trees;
  trees.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    trees.emplace_back(SignatureTreeConfig{}, &arena, &forest);
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const std::string& line : lines) trees[t].learn(line);
    });
  }
  for (std::thread& t : threads) t.join();

  SignatureTree reference(SignatureTreeConfig{});
  for (const std::string& line : lines) reference.learn(line);

  ASSERT_GT(reference.size(), 0u);
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(trees[t].size(), reference.size()) << "tree " << t;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto id = static_cast<std::int32_t>(i);
      ASSERT_EQ(trees[t].pattern(id), reference.pattern(id))
          << "tree " << t << " template " << i;
      ASSERT_EQ(trees[t].match_count(id), reference.match_count(id))
          << "tree " << t << " template " << i;
      ASSERT_NE(trees[t].fleet_template_id(id), SignatureTree::kNoFleetId);
      ASSERT_EQ(trees[t].fleet_template_id(id), trees[0].fleet_template_id(id))
          << "tree " << t << " template " << i;
    }
  }
}

// Warm reader trees match() lock-free — resolving their forest-backed
// template spans via view() — while a writer tree keeps admitting new
// templates (new shapes, so the forest's table grows and word chunks
// extend under the readers). match() must never take the admission
// mutex and must keep returning the warm ids throughout. TSan-clean.
TEST(SharedForestStressTest, LockFreeMatchRacesForestAdmission) {
  constexpr std::size_t kReaders = 3;
  const std::vector<std::string> warm = stress_corpus();
  const std::vector<std::string> fresh = writer_corpus();

  nfv::util::SharedInterner arena;
  SharedSignatureForest forest(&arena);
  std::vector<SignatureTree> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back(SignatureTreeConfig{}, &arena, &forest);
    for (const std::string& line : warm) readers.back().learn(line);
  }
  // Expected match ids on a quiet forest, per reader (all identical, but
  // computed per tree to keep the read path honest).
  std::vector<std::vector<std::int32_t>> expected(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    for (const std::string& line : warm) {
      expected[r].push_back(readers[r].match(line));
    }
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    SignatureTree tree(SignatureTreeConfig{}, &arena, &forest);
    for (const std::string& line : fresh) tree.learn(line);
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      do {
        for (std::size_t i = 0; i < warm.size(); ++i) {
          ASSERT_EQ(readers[r].match(warm[i]), expected[r][i])
              << "reader " << r << " line " << i;
        }
      } while (!done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (std::thread& t : threads) t.join();
  // The writer's templates actually landed next to the warm ones.
  EXPECT_GT(forest.size(), readers[0].size());
}

}  // namespace
}  // namespace nfv::logproc
