#include "logproc/dataset.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nfv::logproc {
namespace {

using nfv::util::Duration;
using nfv::util::SimTime;

std::vector<ParsedLog> make_stream(std::size_t count,
                                   std::int64_t gap_seconds = 60,
                                   std::int32_t vocab = 5) {
  std::vector<ParsedLog> logs;
  for (std::size_t i = 0; i < count; ++i) {
    logs.push_back({SimTime{static_cast<std::int64_t>(i) * gap_seconds},
                    static_cast<std::int32_t>(i % vocab)});
  }
  return logs;
}

TEST(ExcludeIntervals, DropsLogsInside) {
  const auto logs = make_stream(10, 60);
  const std::vector<TimeInterval> drop{{SimTime{120}, SimTime{300}}};
  const auto kept = exclude_intervals(logs, drop);
  EXPECT_EQ(kept.size(), 7u);  // drops t=120,180,240 (300 is exclusive)
  for (const auto& log : kept) {
    EXPECT_TRUE(log.time < SimTime{120} || log.time >= SimTime{300});
  }
}

TEST(ExcludeIntervals, OverlappingIntervals) {
  const auto logs = make_stream(10, 60);
  const std::vector<TimeInterval> drop{{SimTime{0}, SimTime{120}},
                                       {SimTime{60}, SimTime{240}}};
  EXPECT_EQ(exclude_intervals(logs, drop).size(), 6u);
}

TEST(ExcludeIntervals, NoIntervalsKeepsAll) {
  const auto logs = make_stream(5);
  EXPECT_EQ(exclude_intervals(logs, {}).size(), 5u);
}

TEST(SliceTime, HalfOpenWindow) {
  const auto logs = make_stream(10, 60);
  const auto window = slice_time(logs, SimTime{60}, SimTime{180});
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[0].time.seconds, 60);
  EXPECT_EQ(window[1].time.seconds, 120);
}

TEST(BuildSequenceExamples, WindowContentsAndTarget) {
  const auto logs = make_stream(8, 60);
  const auto examples = build_sequence_examples(logs, 3);
  ASSERT_EQ(examples.size(), 5u);
  const auto& first = examples[0];
  ASSERT_EQ(first.ids.size(), 3u);
  EXPECT_EQ(first.ids[0], 0);
  EXPECT_EQ(first.ids[1], 1);
  EXPECT_EQ(first.ids[2], 2);
  EXPECT_EQ(first.target, 3);
  // Δt of the window head is 0 only for the stream's first log.
  EXPECT_FLOAT_EQ(first.dts[0], 0.0f);
  EXPECT_FLOAT_EQ(first.dts[1], 60.0f);
  const auto& second = examples[1];
  EXPECT_FLOAT_EQ(second.dts[0], 60.0f);
}

TEST(BuildSequenceExamples, TooFewLogsYieldNothing) {
  const auto logs = make_stream(3, 60);
  EXPECT_TRUE(build_sequence_examples(logs, 3).empty());
  EXPECT_TRUE(build_sequence_examples({}, 3).empty());
}

TEST(BuildSequenceExamples, GapBreaksWindows) {
  std::vector<ParsedLog> logs = make_stream(4, 60);
  // Insert a 2-day silence before two more logs.
  logs.push_back({logs.back().time + Duration::of_days(2), 0});
  logs.push_back({logs.back().time + Duration::of_seconds(30), 1});
  const auto examples =
      build_sequence_examples(logs, 2, Duration::of_hours(12));
  // Windows spanning the silence are rejected.
  for (const auto& ex : examples) {
    for (float dt : ex.dts) EXPECT_LE(dt, 12.0f * 3600.0f);
  }
  EXPECT_LT(examples.size(), logs.size() - 2);
}

TEST(BuildSequenceExamples, RejectsZeroWindow) {
  const auto logs = make_stream(5);
  EXPECT_THROW(build_sequence_examples(logs, 0), nfv::util::CheckError);
}

TEST(TemplateDistribution, NormalizedCounts) {
  std::vector<ParsedLog> logs;
  logs.push_back({SimTime{0}, 0});
  logs.push_back({SimTime{1}, 0});
  logs.push_back({SimTime{2}, 2});
  logs.push_back({SimTime{3}, 7});  // out of vocab → ignored
  const auto dist = template_distribution(logs, 4);
  ASSERT_EQ(dist.size(), 4u);
  EXPECT_NEAR(dist[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(dist[2], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist[1], 0.0);
}

TEST(TemplateDistribution, EmptyLogsAllZero) {
  const auto dist = template_distribution({}, 3);
  for (double d : dist) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(BuildDocuments, HalfOverlappingWindows) {
  const auto logs = make_stream(20, 60);
  const auto docs = build_documents(logs, 10);
  ASSERT_EQ(docs.size(), 3u);  // starts at 0, 5, 10
  EXPECT_EQ(docs[0].template_ids.size(), 10u);
  EXPECT_EQ(docs[0].time, logs[9].time);
  EXPECT_EQ(docs[1].time, logs[14].time);
}

TEST(BuildDocuments, ShortStreamYieldsNothing) {
  const auto logs = make_stream(5);
  EXPECT_TRUE(build_documents(logs, 10).empty());
}

TEST(Tfidf, TransformIsL2Normalized) {
  const auto logs = make_stream(40, 60, 4);
  const auto docs = build_documents(logs, 8);
  TfidfFeaturizer featurizer;
  featurizer.fit(docs, 4);
  const auto features = featurizer.transform(docs[0]);
  double norm = 0.0;
  for (float f : features) norm += static_cast<double>(f) * f;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(Tfidf, RareTemplatesWeighHeavierAtEqualCount) {
  // Template 0 appears in every document, template 3 in just one. At equal
  // term frequency, the rarer template must get the larger idf weight.
  std::vector<Document> docs(4);
  for (auto& doc : docs) doc.template_ids = {0, 1};
  docs[3].template_ids = {0, 3};
  TfidfFeaturizer featurizer;
  featurizer.fit(docs, 4);
  const auto features = featurizer.transform(docs[3]);
  EXPECT_GT(features[3], features[0]);
}

TEST(Tfidf, UnknownIdsIgnored) {
  std::vector<Document> docs(2);
  docs[0].template_ids = {0, 1};
  docs[1].template_ids = {1, 2};
  TfidfFeaturizer featurizer;
  featurizer.fit(docs, 3);
  Document with_unknown;
  with_unknown.template_ids = {0, 99, -1};
  EXPECT_NO_THROW(featurizer.transform(with_unknown));
}

TEST(Tfidf, TransformBeforeFitThrows) {
  TfidfFeaturizer featurizer;
  Document doc;
  EXPECT_THROW(featurizer.transform(doc), nfv::util::CheckError);
}

TEST(Tfidf, BatchMatchesSingle) {
  const auto logs = make_stream(30, 60, 4);
  const auto docs = build_documents(logs, 6);
  TfidfFeaturizer featurizer;
  featurizer.fit(docs, 4);
  const auto batch = featurizer.transform_batch(docs);
  ASSERT_EQ(batch.rows(), docs.size());
  const auto single = featurizer.transform(docs[1]);
  for (std::size_t c = 0; c < batch.cols(); ++c) {
    EXPECT_FLOAT_EQ(batch.at(1, c), single[c]);
  }
}

}  // namespace
}  // namespace nfv::logproc
