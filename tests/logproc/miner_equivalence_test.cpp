// Equivalence regression: the fast-path SignatureTree must mine EXACTLY
// what the seed implementation (ReferenceSignatureTree) mines — identical
// template-id sequences, signature patterns, and match counts — on a full
// multi-vPE simulated fleet trace. This is the determinism contract that
// lets the interned representation replace the string miner everywhere,
// including the ML vocabulary it feeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "logproc/reference_miner.h"
#include "logproc/signature_tree.h"
#include "simnet/fleet.h"
#include "util/interner.h"

namespace nfv::logproc {
namespace {

/// All raw lines of a small multi-vPE fleet trace in global time order
/// (the order parse_fleet feeds its shared tree), tagged with their vPE.
/// Lines are owned copies: the trace itself is a function local.
struct TraceLines {
  std::vector<std::string> lines;
  std::vector<std::size_t> vpe;
};

TraceLines fleet_lines() {
  const simnet::FleetTrace trace =
      simnet::simulate_fleet(simnet::small_fleet_config(20260807));

  TraceLines out;
  const std::size_t n = trace.logs_by_vpe.size();
  std::vector<std::size_t> cursor(n, 0);
  while (true) {
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (cursor[v] >= trace.logs_by_vpe[v].size()) continue;
      if (best == n || trace.logs_by_vpe[v][cursor[v]].time <
                           trace.logs_by_vpe[best][cursor[best]].time) {
        best = v;
      }
    }
    if (best == n) break;
    out.lines.push_back(trace.logs_by_vpe[best][cursor[best]].text);
    out.vpe.push_back(best);
    ++cursor[best];
  }
  return out;
}

void expect_trees_identical(const ReferenceSignatureTree& reference,
                            const SignatureTree& fast) {
  ASSERT_EQ(reference.size(), fast.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const ReferenceSignature& ref_sig = reference.signatures()[i];
    const auto id = static_cast<std::int32_t>(i);
    ASSERT_EQ(ref_sig.id, id);
    ASSERT_EQ(ref_sig.match_count, fast.match_count(id)) << "template " << i;
    ASSERT_EQ(ref_sig.pattern(), fast.pattern(id)) << "template " << i;
  }
}

void replay_and_compare(const std::vector<std::string>& lines,
                        SignatureTreeConfig config) {
  ReferenceSignatureTree reference(config);
  SignatureTree fast(config);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::int32_t ref_id = reference.learn(lines[i]);
    const std::int32_t fast_id = fast.learn(lines[i]);
    ASSERT_EQ(ref_id, fast_id) << "line " << i << ": " << lines[i];
  }
  expect_trees_identical(reference, fast);
  // Read-only matching agrees too, including lines with unseen tokens.
  for (std::size_t i = 0; i < lines.size(); i += 7) {
    ASSERT_EQ(reference.match(lines[i]), fast.match(lines[i]))
        << "line " << i;
  }
  ASSERT_EQ(reference.match("utterly novel shape never mined before"),
            fast.match("utterly novel shape never mined before"));
}

TEST(MinerEquivalence, SharedTreeOverMergedFleetTrace) {
  const TraceLines trace = fleet_lines();
  ASSERT_GT(trace.lines.size(), 1000u);  // non-vacuous
  replay_and_compare(trace.lines, SignatureTreeConfig{});
}

TEST(MinerEquivalence, StricterMergeThreshold) {
  const TraceLines trace = fleet_lines();
  SignatureTreeConfig config;
  config.merge_threshold = 0.9;
  replay_and_compare(trace.lines, config);
}

TEST(MinerEquivalence, TinySignatureCapExercisesReusePath) {
  const TraceLines trace = fleet_lines();
  SignatureTreeConfig config;
  config.max_signatures = 8;  // constant capacity pressure
  replay_and_compare(trace.lines, config);
}

// Per-vPE trees, exactly how StreamMonitor owns its miners: each vPE's
// stream goes through its own reference/fast pair.
TEST(MinerEquivalence, PerVpeTreesMatchStreamMonitorUsage) {
  const TraceLines trace = fleet_lines();
  std::size_t vpes = 0;
  for (const std::size_t v : trace.vpe) vpes = std::max(vpes, v + 1);
  std::vector<ReferenceSignatureTree> reference(vpes);
  std::vector<SignatureTree> fast(vpes);
  for (std::size_t i = 0; i < trace.lines.size(); ++i) {
    const std::size_t v = trace.vpe[i];
    ASSERT_EQ(reference[v].learn(trace.lines[i]),
              fast[v].learn(trace.lines[i]))
        << "line " << i;
  }
  for (std::size_t v = 0; v < vpes; ++v) {
    expect_trees_identical(reference[v], fast[v]);
  }
}

// The fleet-memory contract: attaching every per-vPE tree to ONE shared
// token arena must not change what any tree mines — template-id
// sequences, patterns, and match counts stay byte-identical to both the
// reference miner and a fully private tree, because mining keys on token
// TEXT, never on the numeric ids the arena re-assigns fleet-wide.
TEST(MinerEquivalence, SharedArenaTreesMatchPrivateTreesExactly) {
  const TraceLines trace = fleet_lines();
  std::size_t vpes = 0;
  for (const std::size_t v : trace.vpe) vpes = std::max(vpes, v + 1);

  nfv::util::SharedInterner arena;
  std::vector<ReferenceSignatureTree> reference(vpes);
  std::vector<SignatureTree> private_trees(vpes);
  std::vector<SignatureTree> shared_trees;
  shared_trees.reserve(vpes);
  for (std::size_t v = 0; v < vpes; ++v) {
    shared_trees.emplace_back(SignatureTreeConfig{}, &arena);
  }

  for (std::size_t i = 0; i < trace.lines.size(); ++i) {
    const std::size_t v = trace.vpe[i];
    const std::int32_t ref_id = reference[v].learn(trace.lines[i]);
    ASSERT_EQ(private_trees[v].learn(trace.lines[i]), ref_id) << "line " << i;
    ASSERT_EQ(shared_trees[v].learn(trace.lines[i]), ref_id) << "line " << i;
  }
  for (std::size_t v = 0; v < vpes; ++v) {
    expect_trees_identical(reference[v], shared_trees[v]);
    // Same read-only matching behavior on the shared-arena tree.
    for (std::size_t i = v; i < trace.lines.size(); i += 13) {
      ASSERT_EQ(private_trees[v].match(trace.lines[i]),
                shared_trees[v].match(trace.lines[i]))
          << "vpe " << v << " line " << i;
    }
  }
  // The fleet vocabulary actually landed in the arena, shared once.
  EXPECT_GT(arena.size(), 2u);
}

// The shared signature forest extends the contract one level up: with
// every per-vPE tree delegating TEMPLATE storage to one fleet-wide
// forest, template-id sequences, patterns and match counts must stay
// byte-identical to the reference miner AND to fully private trees —
// mining decisions depend only on token text and per-tree creation
// order, never on where a template's token sequence is stored.
TEST(MinerEquivalence, SharedForestTreesMatchPrivateTreesExactly) {
  const TraceLines trace = fleet_lines();
  std::size_t vpes = 0;
  for (const std::size_t v : trace.vpe) vpes = std::max(vpes, v + 1);

  nfv::util::SharedInterner arena;
  SharedSignatureForest forest(&arena);
  std::vector<ReferenceSignatureTree> reference(vpes);
  std::vector<SignatureTree> private_trees(vpes);
  std::vector<SignatureTree> forest_trees;
  forest_trees.reserve(vpes);
  for (std::size_t v = 0; v < vpes; ++v) {
    forest_trees.emplace_back(SignatureTreeConfig{}, &arena, &forest);
  }

  for (std::size_t i = 0; i < trace.lines.size(); ++i) {
    const std::size_t v = trace.vpe[i];
    const std::int32_t ref_id = reference[v].learn(trace.lines[i]);
    ASSERT_EQ(private_trees[v].learn(trace.lines[i]), ref_id) << "line " << i;
    ASSERT_EQ(forest_trees[v].learn(trace.lines[i]), ref_id) << "line " << i;
  }
  for (std::size_t v = 0; v < vpes; ++v) {
    expect_trees_identical(reference[v], forest_trees[v]);
    for (std::size_t i = v; i < trace.lines.size(); i += 13) {
      ASSERT_EQ(private_trees[v].match(trace.lines[i]),
                forest_trees[v].match(trace.lines[i]))
          << "vpe " << v << " line " << i;
    }
  }
  // Templates actually landed in the forest, shared once: every tree's
  // fully-shared templates resolve to fleet-stable node ids, and trees
  // that mined the same template agree on its fleet id.
  EXPECT_GT(forest.size(), 0u);
  for (std::size_t v = 1; v < vpes; ++v) {
    const SignatureTree& a = forest_trees[0];
    const SignatureTree& b = forest_trees[v];
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto id = static_cast<std::int32_t>(i);
      if (i < b.size() && a.pattern(id) == b.pattern(id) &&
          a.fleet_template_id(id) != SignatureTree::kNoFleetId &&
          b.fleet_template_id(id) != SignatureTree::kNoFleetId) {
        EXPECT_EQ(a.fleet_template_id(id), b.fleet_template_id(id))
            << "vpe " << v << " template " << i;
      }
    }
  }
}

}  // namespace
}  // namespace nfv::logproc
