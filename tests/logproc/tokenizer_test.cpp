#include "logproc/tokenizer.h"

#include <gtest/gtest.h>

namespace nfv::logproc {
namespace {

TEST(Tokenizer, SplitsOnSeparators) {
  const auto tokens =
      tokenize("rpd[1234]: peer 10.0.0.1 (AS 65000) down");
  // '[', ']', '(', ')' are separators; ':' is kept inside tokens.
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[0], "rpd");
  EXPECT_EQ(tokens[1], "1234");
}

TEST(Tokenizer, KeepsInterfaceNamesWhole) {
  const auto tokens = tokenize("link down on ge-0/0/17 now");
  bool found = false;
  for (const auto& t : tokens) found = found || t == "ge-0/0/17";
  EXPECT_TRUE(found);
}

TEST(Tokenizer, EmptyLine) { EXPECT_TRUE(tokenize("").empty()); }

TEST(Tokenizer, WhitespaceOnly) { EXPECT_TRUE(tokenize("  \t ").empty()); }

TEST(IsVariableToken, DigitsMarkVariables) {
  EXPECT_TRUE(is_variable_token("1234"));
  EXPECT_TRUE(is_variable_token("10.0.0.1"));
  EXPECT_TRUE(is_variable_token("ge-0/0/1"));
  EXPECT_TRUE(is_variable_token("0xdeadbeef"));
  EXPECT_FALSE(is_variable_token("keepalive"));
  EXPECT_FALSE(is_variable_token("BGP"));
  EXPECT_FALSE(is_variable_token(""));
}

TEST(TokenizeMasked, ReplacesVariableFields) {
  const auto tokens = tokenize_masked("peer 10.0.0.1 state Idle count 42");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0], "peer");
  EXPECT_EQ(tokens[1], kWildcard);
  EXPECT_EQ(tokens[2], "state");
  EXPECT_EQ(tokens[3], "Idle");
  EXPECT_EQ(tokens[4], "count");
  EXPECT_EQ(tokens[5], kWildcard);
}

TEST(TokenizeMasked, StableTokensUntouched) {
  const auto tokens = tokenize_masked("BGP keepalive exchange completed");
  for (const auto& t : tokens) EXPECT_NE(t, kWildcard);
}

}  // namespace
}  // namespace nfv::logproc
