#include "logproc/tokenizer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace nfv::logproc {
namespace {

TEST(Tokenizer, SplitsOnSeparators) {
  const auto tokens =
      tokenize("rpd[1234]: peer 10.0.0.1 (AS 65000) down");
  // '[', ']', '(', ')' are separators; ':' is kept inside tokens.
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[0], "rpd");
  EXPECT_EQ(tokens[1], "1234");
}

TEST(Tokenizer, KeepsInterfaceNamesWhole) {
  const auto tokens = tokenize("link down on ge-0/0/17 now");
  bool found = false;
  for (const auto& t : tokens) found = found || t == "ge-0/0/17";
  EXPECT_TRUE(found);
}

TEST(Tokenizer, EmptyLine) { EXPECT_TRUE(tokenize("").empty()); }

TEST(Tokenizer, WhitespaceOnly) { EXPECT_TRUE(tokenize("  \t ").empty()); }

TEST(IsVariableToken, DigitsMarkVariables) {
  EXPECT_TRUE(is_variable_token("1234"));
  EXPECT_TRUE(is_variable_token("10.0.0.1"));
  EXPECT_TRUE(is_variable_token("ge-0/0/1"));
  EXPECT_TRUE(is_variable_token("0xdeadbeef"));
  EXPECT_FALSE(is_variable_token("keepalive"));
  EXPECT_FALSE(is_variable_token("BGP"));
  EXPECT_FALSE(is_variable_token(""));
}

TEST(TokenizeMasked, ReplacesVariableFields) {
  const auto tokens = tokenize_masked("peer 10.0.0.1 state Idle count 42");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0], "peer");
  EXPECT_EQ(tokens[1], kWildcard);
  EXPECT_EQ(tokens[2], "state");
  EXPECT_EQ(tokens[3], "Idle");
  EXPECT_EQ(tokens[4], "count");
  EXPECT_EQ(tokens[5], kWildcard);
}

TEST(TokenizeMasked, StableTokensUntouched) {
  const auto tokens = tokenize_masked("BGP keepalive exchange completed");
  for (const auto& t : tokens) EXPECT_NE(t, kWildcard);
}

// --- Span tokenizer: must agree with the allocating reference tier on
// every line, token for token, including the is-variable classification.

void expect_spans_match_reference(std::string_view line) {
  std::vector<std::string_view> spans;
  std::vector<unsigned char> variable;
  tokenize_spans(line, spans, variable);
  const std::vector<std::string> reference = tokenize(line);
  ASSERT_EQ(spans.size(), reference.size()) << "line: " << line;
  ASSERT_EQ(variable.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(spans[i], reference[i]) << "token " << i;
    EXPECT_EQ(variable[i] != 0, is_variable_token(reference[i]))
        << "token " << i << " = " << reference[i];
    // Spans must view into the original line, not copies.
    EXPECT_GE(spans[i].data(), line.data());
    EXPECT_LE(spans[i].data() + spans[i].size(), line.data() + line.size());
  }
}

TEST(TokenizeSpans, AgreesWithReferenceOnTypicalLines) {
  expect_spans_match_reference(
      "rpd[1234]: peer 10.0.0.1 (AS 65000) down");
  expect_spans_match_reference(
      "mib2d[901]: SNMP_TRAP_LINK_DOWN: ifIndex 531, ifAdminStatus up(1), "
      "ifOperStatus down(2), ifName ge-0/0/17");
  expect_spans_match_reference("BGP keepalive exchange completed");
}

TEST(TokenizeSpans, EmptyLine) {
  std::vector<std::string_view> spans;
  std::vector<unsigned char> variable;
  tokenize_spans("", spans, variable);
  EXPECT_TRUE(spans.empty());
  EXPECT_TRUE(variable.empty());
  // Reuse clears previous content.
  tokenize_spans("alpha beta", spans, variable);
  ASSERT_EQ(spans.size(), 2u);
  tokenize_spans("", spans, variable);
  EXPECT_TRUE(spans.empty());
  EXPECT_TRUE(variable.empty());
}

TEST(TokenizeSpans, AllSeparatorLine) {
  expect_spans_match_reference("[]();;,,== \t \"\"");
  std::vector<std::string_view> spans;
  std::vector<unsigned char> variable;
  tokenize_spans("[]();;,,== \t \"\"", spans, variable);
  EXPECT_TRUE(spans.empty());
}

TEST(TokenizeSpans, Ipv6AddressStaysOneVariableToken) {
  const std::string line = "bgp neighbor 2001:db8:0:1::17 is unreachable";
  expect_spans_match_reference(line);
  std::vector<std::string_view> spans;
  std::vector<unsigned char> variable;
  tokenize_spans(line, spans, variable);
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[2], "2001:db8:0:1::17");  // ':' kept inside tokens
  EXPECT_NE(variable[2], 0);                // digits → variable
}

TEST(TokenizeSpans, HexIdsAreVariableBareHexWordsAreNot) {
  const std::string line = "session 0xdeadbeef cookie feedface dropped";
  expect_spans_match_reference(line);
  std::vector<std::string_view> spans;
  std::vector<unsigned char> variable;
  tokenize_spans(line, spans, variable);
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_NE(variable[1], 0);  // 0xdeadbeef contains a digit
  // All-letter hex words carry no digit — the digit heuristic (pinned
  // seed behavior) leaves them stable.
  EXPECT_EQ(variable[3], 0);
}

TEST(TokenizeSpans, InterfaceUnitStaysOneVariableToken) {
  const std::string line = "input error on interface ge-0/0/1.100 cleared";
  expect_spans_match_reference(line);
  std::vector<std::string_view> spans;
  std::vector<unsigned char> variable;
  tokenize_spans(line, spans, variable);
  ASSERT_EQ(spans.size(), 6u);
  EXPECT_EQ(spans[4], "ge-0/0/1.100");
  EXPECT_NE(variable[4], 0);
}

TEST(TokenizeSpans, VeryLongLine) {
  // > 4 KiB: alternating stable words and counters, one giant token at
  // the end.
  std::string line;
  for (int i = 0; i < 300; ++i) {
    line += "interface ge-0/0/";
    line += std::to_string(i);
    line += " flapped ";
  }
  line += std::string(512, 'x');  // 512-char stable token
  ASSERT_GT(line.size(), 4096u);
  expect_spans_match_reference(line);
  std::vector<std::string_view> spans;
  std::vector<unsigned char> variable;
  tokenize_spans(line, spans, variable);
  ASSERT_EQ(spans.size(), 901u);  // 300 * 3 + 1
  EXPECT_EQ(spans.back().size(), 512u);
  EXPECT_EQ(variable.back(), 0);
}

TEST(TokenizeSpans, Utf8BytesStayInTokens) {
  // Multi-byte UTF-8 sequences are opaque non-separator bytes: they never
  // split a token and never count as digits.
  const std::string line = "température élevée fpc2 夏 34°C";
  expect_spans_match_reference(line);
  std::vector<std::string_view> spans;
  std::vector<unsigned char> variable;
  tokenize_spans(line, spans, variable);
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[0], "température");
  EXPECT_EQ(variable[0], 0);
  EXPECT_EQ(spans[3], "夏");
  EXPECT_NE(variable[2], 0);  // fpc2
  EXPECT_NE(variable[4], 0);  // 34°C
}

// Differential fuzz: random lines over an adversarial alphabet (all
// separators, all whitespace, digits, letters, high/UTF-8 bytes), with
// lengths straddling the AVX2 kernel's 32-byte chunk boundaries and its
// 16-byte dispatch threshold, must tokenize identically to the reference.
TEST(TokenizeSpans, RandomLinesAgreeWithReference) {
  const std::string_view alphabet =
      " \t,;=()[]\"\n\v\f\r0123456789abcXYZ:/.-<*>\x80\xC3\xA9";
  nfv::util::Rng rng(20260807);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.uniform_index(96);  // 0..95: crosses 32/64
    std::string line;
    line.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      line += alphabet[rng.uniform_index(alphabet.size())];
    }
    expect_spans_match_reference(line);
    if (HasFatalFailure()) {
      ADD_FAILURE() << "failing line (" << line.size()
                    << " bytes): " << line;
      return;
    }
  }
}

TEST(TokenizeSpans, TrimsNonSeparatorWhitespace) {
  // \n \r \v \f are whitespace but not separators: trimmed at token
  // edges, kept verbatim inside a token (pinned seed behavior).
  expect_spans_match_reference("alpha\n beta\r \vgamma\f");
  expect_spans_match_reference("foo\rbar");
  std::vector<std::string_view> spans;
  std::vector<unsigned char> variable;
  tokenize_spans("alpha\n beta\r", spans, variable);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], "alpha");
  EXPECT_EQ(spans[1], "beta");
  tokenize_spans("foo\rbar", spans, variable);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], "foo\rbar");
}

}  // namespace
}  // namespace nfv::logproc
