#include "logproc/signature_tree.h"

#include <gtest/gtest.h>

#include <string>

#include "logproc/tokenizer.h"
#include "util/check.h"

namespace nfv::logproc {
namespace {

TEST(SignatureTree, SameShapeLinesShareTemplate) {
  SignatureTree tree;
  const auto a = tree.learn("peer 10.0.0.1 state changed to Idle");
  const auto b = tree.learn("peer 10.9.8.7 state changed to Idle");
  EXPECT_EQ(a, b);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SignatureTree, DifferentMessagesGetDifferentTemplates) {
  SignatureTree tree;
  const auto a = tree.learn("peer 10.0.0.1 state changed to Idle");
  const auto b = tree.learn("fan tray 3 rpm 9000 deviates from commanded");
  EXPECT_NE(a, b);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(SignatureTree, GeneralizesDisagreeingPositions) {
  SignatureTree tree;
  tree.learn("session to agg1.region2 established cleanly");
  tree.learn("session to core3.region1 established cleanly");
  ASSERT_EQ(tree.size(), 1u);
  const auto& sig = tree.signatures()[0];
  // Position 2 disagreed → wildcard; others survive.
  EXPECT_EQ(tree.token_text(sig.tokens[0]), "session");
  EXPECT_EQ(sig.tokens[2], kWildcardTokenId);
  EXPECT_EQ(tree.token_text(sig.tokens[3]), "established");
  EXPECT_EQ(tree.pattern(0), "session to <*> established cleanly");
}

TEST(SignatureTree, MatchCountsAccumulate) {
  SignatureTree tree;
  const auto id = tree.learn("alpha beta gamma");
  tree.learn("alpha beta gamma");
  tree.learn("alpha beta gamma");
  EXPECT_EQ(tree.signatures()[static_cast<std::size_t>(id)].match_count, 3u);
}

TEST(SignatureTree, DifferentTokenCountsNeverMerge) {
  SignatureTree tree;
  const auto a = tree.learn("alpha beta gamma");
  const auto b = tree.learn("alpha beta gamma delta");
  EXPECT_NE(a, b);
}

TEST(SignatureTree, MatchIsReadOnly) {
  SignatureTree tree;
  const auto id = tree.learn("peer 10.0.0.1 hold timer expired early");
  const auto before = tree.size();
  EXPECT_EQ(tree.match("peer 172.16.0.9 hold timer expired early"), id);
  EXPECT_EQ(tree.size(), before);
  EXPECT_EQ(tree.match("utterly novel message shape never seen"), -1);
  EXPECT_EQ(tree.size(), before);
}

TEST(SignatureTree, MatchToleratesUnseenStableTokens) {
  SignatureTree tree;
  const auto id = tree.learn("alpha beta gamma delta epsilon");
  // Two unseen stable tokens: similarity 3/5 = 0.6 still clears the
  // default threshold; the unseen tokens must not be interned.
  EXPECT_EQ(tree.match("alpha beta gamma newword otherword"), id);
  EXPECT_EQ(tree.match("alpha newone newtwo newthree newfour"), -1);
  // learn() after the matches behaves as if they never happened.
  EXPECT_EQ(tree.learn("alpha beta gamma delta epsilon"), id);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SignatureTree, IdsAreDenseAndStable) {
  SignatureTree tree;
  const auto a = tree.learn("message one alpha");
  const auto b = tree.learn("message two beta distinct tail");
  EXPECT_EQ(a, 0);
  // b may or may not be 1 depending on merge, but must index signatures().
  EXPECT_GE(b, 0);
  EXPECT_LT(static_cast<std::size_t>(b), tree.size());
  EXPECT_EQ(tree.signatures()[0].id, 0);
}

TEST(SignatureTree, EmptyLineHandled) {
  SignatureTree tree;
  const auto id = tree.learn("");
  EXPECT_GE(id, 0);
  EXPECT_EQ(tree.learn(""), id);
  EXPECT_EQ(tree.pattern(id), "<empty>");
}

TEST(SignatureTree, MergeThresholdControlsSplitting) {
  SignatureTreeConfig strict;
  strict.merge_threshold = 0.95;
  SignatureTree tree(strict);
  const auto a = tree.learn("alpha beta gamma delta epsilon");
  const auto b = tree.learn("alpha beta gamma delta zeta");
  // 4/5 = 0.8 similarity < 0.95 → separate templates.
  EXPECT_NE(a, b);

  SignatureTreeConfig loose;
  loose.merge_threshold = 0.6;
  SignatureTree tree2(loose);
  const auto c = tree2.learn("alpha beta gamma delta epsilon");
  const auto d = tree2.learn("alpha beta gamma delta zeta");
  EXPECT_EQ(c, d);
}

TEST(SignatureTree, CapReusesClosestCompatibleSignature) {
  SignatureTreeConfig config;
  config.max_signatures = 1;
  config.merge_threshold = 0.9;
  SignatureTree tree(config);
  const auto a = tree.learn("alpha beta gamma");
  // Same shape, low similarity: cap forces reuse.
  const auto b = tree.learn("alpha omega psi");
  EXPECT_EQ(a, b);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SignatureTree, CapStillAdmitsNewShapes) {
  SignatureTreeConfig config;
  config.max_signatures = 1;
  SignatureTree tree(config);
  tree.learn("alpha beta gamma");
  const auto b = tree.learn("a completely different shape with more tokens");
  EXPECT_GE(b, 1);  // soft cap: new shape still gets a template
}

// Drive the tree past the default 4096 soft cap: ids must stay dense and
// stable, and once at capacity the closest shape-compatible signature is
// reused for lines below the merge threshold.
TEST(SignatureTree, DefaultCapKeepsIdsDenseAndReusePathFires) {
  SignatureTree tree;  // default max_signatures = 4096
  const std::size_t over = tree.config().max_signatures + 104;

  // Distinct letter-only heads → each line is a genuinely new shape no
  // existing signature can absorb, so the soft cap admits all of them.
  const auto head = [](std::size_t i) {
    std::string h = "hdr";
    for (int k = 0; k < 3; ++k) {
      h += static_cast<char>('a' + i % 26);
      i /= 26;
    }
    return h;
  };
  std::vector<std::int32_t> first_ids;
  first_ids.reserve(over);
  for (std::size_t i = 0; i < over; ++i) {
    first_ids.push_back(tree.learn(head(i) + " alpha beta"));
  }
  ASSERT_EQ(tree.size(), over);
  for (std::size_t i = 0; i < over; ++i) {
    // Dense, stable ids in discovery order.
    ASSERT_EQ(first_ids[i], static_cast<std::int32_t>(i));
    ASSERT_EQ(tree.signatures()[i].id, static_cast<std::int32_t>(i));
  }

  // At capacity, a shape-compatible line below the merge threshold reuses
  // the closest existing signature instead of minting a new id...
  const auto reused = tree.learn(head(0) + " omega psi");
  EXPECT_EQ(reused, first_ids[0]);
  EXPECT_EQ(tree.size(), over);
  EXPECT_EQ(tree.signatures()[0].match_count, 2u);
  // ...its disagreeing positions generalize to wildcards...
  EXPECT_EQ(tree.pattern(0), head(0) + " <*> <*>");
  // ...and re-learning any earlier line still returns its stable id.
  EXPECT_EQ(tree.learn(head(7) + " alpha beta"), first_ids[7]);
}

TEST(SignatureTree, RejectsBadConfig) {
  SignatureTreeConfig bad;
  bad.merge_threshold = 0.0;
  EXPECT_THROW(SignatureTree{bad}, nfv::util::CheckError);
  SignatureTreeConfig bad2;
  bad2.max_signatures = 0;
  EXPECT_THROW(SignatureTree{bad2}, nfv::util::CheckError);
}

TEST(SignatureTree, PatternRendering) {
  SignatureTree tree;
  tree.learn("peer 10.0.0.1 down");
  EXPECT_EQ(tree.pattern(0), "peer <*> down");
}

TEST(SignatureTree, VariableFirstTokenGroupsByEmptyHead) {
  SignatureTree tree;
  const auto a = tree.learn("42 widgets processed ok");
  const auto b = tree.learn("77 widgets processed ok");
  EXPECT_EQ(a, b);
}

TEST(SignatureTree, CopiesAreIndependent) {
  SignatureTree tree;
  tree.learn("peer 10.0.0.1 down");
  SignatureTree copy = tree;
  copy.learn("utterly new shape with extra tokens here");
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  // The copy's interner is its own: the original still renders correctly.
  EXPECT_EQ(tree.pattern(0), "peer <*> down");
  EXPECT_EQ(copy.pattern(0), "peer <*> down");
}

}  // namespace
}  // namespace nfv::logproc
