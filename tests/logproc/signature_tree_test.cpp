#include "logproc/signature_tree.h"

#include <gtest/gtest.h>

#include <string>

#include "logproc/tokenizer.h"
#include "util/check.h"

namespace nfv::logproc {
namespace {

TEST(SignatureTree, SameShapeLinesShareTemplate) {
  SignatureTree tree;
  const auto a = tree.learn("peer 10.0.0.1 state changed to Idle");
  const auto b = tree.learn("peer 10.9.8.7 state changed to Idle");
  EXPECT_EQ(a, b);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SignatureTree, DifferentMessagesGetDifferentTemplates) {
  SignatureTree tree;
  const auto a = tree.learn("peer 10.0.0.1 state changed to Idle");
  const auto b = tree.learn("fan tray 3 rpm 9000 deviates from commanded");
  EXPECT_NE(a, b);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(SignatureTree, GeneralizesDisagreeingPositions) {
  SignatureTree tree;
  tree.learn("session to agg1.region2 established cleanly");
  tree.learn("session to core3.region1 established cleanly");
  ASSERT_EQ(tree.size(), 1u);
  const auto toks = tree.tokens(0);
  // Position 2 disagreed → wildcard; others survive.
  EXPECT_EQ(tree.token_text(toks[0]), "session");
  EXPECT_EQ(toks[2], kWildcardTokenId);
  EXPECT_EQ(tree.token_text(toks[3]), "established");
  EXPECT_EQ(tree.pattern(0), "session to <*> established cleanly");
}

TEST(SignatureTree, MatchCountsAccumulate) {
  SignatureTree tree;
  const auto id = tree.learn("alpha beta gamma");
  tree.learn("alpha beta gamma");
  tree.learn("alpha beta gamma");
  EXPECT_EQ(tree.match_count(id), 3u);
}

TEST(SignatureTree, DifferentTokenCountsNeverMerge) {
  SignatureTree tree;
  const auto a = tree.learn("alpha beta gamma");
  const auto b = tree.learn("alpha beta gamma delta");
  EXPECT_NE(a, b);
}

TEST(SignatureTree, MatchIsReadOnly) {
  SignatureTree tree;
  const auto id = tree.learn("peer 10.0.0.1 hold timer expired early");
  const auto before = tree.size();
  EXPECT_EQ(tree.match("peer 172.16.0.9 hold timer expired early"), id);
  EXPECT_EQ(tree.size(), before);
  EXPECT_EQ(tree.match("utterly novel message shape never seen"), -1);
  EXPECT_EQ(tree.size(), before);
}

TEST(SignatureTree, MatchToleratesUnseenStableTokens) {
  SignatureTree tree;
  const auto id = tree.learn("alpha beta gamma delta epsilon");
  // Two unseen stable tokens: similarity 3/5 = 0.6 still clears the
  // default threshold; the unseen tokens must not be interned.
  EXPECT_EQ(tree.match("alpha beta gamma newword otherword"), id);
  EXPECT_EQ(tree.match("alpha newone newtwo newthree newfour"), -1);
  // learn() after the matches behaves as if they never happened.
  EXPECT_EQ(tree.learn("alpha beta gamma delta epsilon"), id);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SignatureTree, IdsAreDenseAndStable) {
  SignatureTree tree;
  const auto a = tree.learn("message one alpha");
  const auto b = tree.learn("message two beta distinct tail");
  EXPECT_EQ(a, 0);
  // b may or may not be 1 depending on merge, but must be a valid id.
  EXPECT_GE(b, 0);
  EXPECT_LT(static_cast<std::size_t>(b), tree.size());
  EXPECT_GE(tree.match_count(0), 1u);
}

TEST(SignatureTree, EmptyLineHandled) {
  SignatureTree tree;
  const auto id = tree.learn("");
  EXPECT_GE(id, 0);
  EXPECT_EQ(tree.learn(""), id);
  EXPECT_EQ(tree.pattern(id), "<empty>");
}

TEST(SignatureTree, MergeThresholdControlsSplitting) {
  SignatureTreeConfig strict;
  strict.merge_threshold = 0.95;
  SignatureTree tree(strict);
  const auto a = tree.learn("alpha beta gamma delta epsilon");
  const auto b = tree.learn("alpha beta gamma delta zeta");
  // 4/5 = 0.8 similarity < 0.95 → separate templates.
  EXPECT_NE(a, b);

  SignatureTreeConfig loose;
  loose.merge_threshold = 0.6;
  SignatureTree tree2(loose);
  const auto c = tree2.learn("alpha beta gamma delta epsilon");
  const auto d = tree2.learn("alpha beta gamma delta zeta");
  EXPECT_EQ(c, d);
}

TEST(SignatureTree, CapReusesClosestCompatibleSignature) {
  SignatureTreeConfig config;
  config.max_signatures = 1;
  config.merge_threshold = 0.9;
  SignatureTree tree(config);
  const auto a = tree.learn("alpha beta gamma");
  // Same shape, low similarity: cap forces reuse.
  const auto b = tree.learn("alpha omega psi");
  EXPECT_EQ(a, b);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SignatureTree, CapStillAdmitsNewShapes) {
  SignatureTreeConfig config;
  config.max_signatures = 1;
  SignatureTree tree(config);
  tree.learn("alpha beta gamma");
  const auto b = tree.learn("a completely different shape with more tokens");
  EXPECT_GE(b, 1);  // soft cap: new shape still gets a template
}

// Drive the tree past the default 4096 soft cap: ids must stay dense and
// stable, and once at capacity the closest shape-compatible signature is
// reused for lines below the merge threshold.
TEST(SignatureTree, DefaultCapKeepsIdsDenseAndReusePathFires) {
  SignatureTree tree;  // default max_signatures = 4096
  const std::size_t over = tree.config().max_signatures + 104;

  // Distinct letter-only heads → each line is a genuinely new shape no
  // existing signature can absorb, so the soft cap admits all of them.
  const auto head = [](std::size_t i) {
    std::string h = "hdr";
    for (int k = 0; k < 3; ++k) {
      h += static_cast<char>('a' + i % 26);
      i /= 26;
    }
    return h;
  };
  std::vector<std::int32_t> first_ids;
  first_ids.reserve(over);
  for (std::size_t i = 0; i < over; ++i) {
    first_ids.push_back(tree.learn(head(i) + " alpha beta"));
  }
  ASSERT_EQ(tree.size(), over);
  for (std::size_t i = 0; i < over; ++i) {
    // Dense, stable ids in discovery order.
    ASSERT_EQ(first_ids[i], static_cast<std::int32_t>(i));
    ASSERT_EQ(tree.match_count(static_cast<std::int32_t>(i)), 1u);
  }

  // At capacity, a shape-compatible line below the merge threshold reuses
  // the closest existing signature instead of minting a new id...
  const auto reused = tree.learn(head(0) + " omega psi");
  EXPECT_EQ(reused, first_ids[0]);
  EXPECT_EQ(tree.size(), over);
  EXPECT_EQ(tree.match_count(0), 2u);
  // ...its disagreeing positions generalize to wildcards...
  EXPECT_EQ(tree.pattern(0), head(0) + " <*> <*>");
  // ...and re-learning any earlier line still returns its stable id.
  EXPECT_EQ(tree.learn(head(7) + " alpha beta"), first_ids[7]);
}

TEST(SignatureTree, RejectsBadConfig) {
  SignatureTreeConfig bad;
  bad.merge_threshold = 0.0;
  EXPECT_THROW(SignatureTree{bad}, nfv::util::CheckError);
  SignatureTreeConfig bad2;
  bad2.max_signatures = 0;
  EXPECT_THROW(SignatureTree{bad2}, nfv::util::CheckError);
}

TEST(SignatureTree, PatternRendering) {
  SignatureTree tree;
  tree.learn("peer 10.0.0.1 down");
  EXPECT_EQ(tree.pattern(0), "peer <*> down");
}

TEST(SignatureTree, VariableFirstTokenGroupsByEmptyHead) {
  SignatureTree tree;
  const auto a = tree.learn("42 widgets processed ok");
  const auto b = tree.learn("77 widgets processed ok");
  EXPECT_EQ(a, b);
}

TEST(SignatureTree, CopiesAreIndependent) {
  SignatureTree tree;
  tree.learn("peer 10.0.0.1 down");
  SignatureTree copy = tree;
  copy.learn("utterly new shape with extra tokens here");
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  // The copy's interner is its own: the original still renders correctly.
  EXPECT_EQ(tree.pattern(0), "peer <*> down");
  EXPECT_EQ(copy.pattern(0), "peer <*> down");
}

// ---- Shared cross-vPE token arena ----------------------------------------

TEST(SignatureTreeSharedArena, TreesOnOneArenaShareIdStableTokens) {
  nfv::util::SharedInterner arena;
  SignatureTree a(SignatureTreeConfig{}, &arena);
  SignatureTree b(SignatureTreeConfig{}, &arena);
  a.learn("peer 10.0.0.1 state changed to Idle");
  b.learn("peer 10.9.8.7 state changed to Idle");
  EXPECT_EQ(a.pattern(0), b.pattern(0));
  // The stable vocabulary is stored once, fleet-wide, with the SAME id
  // in every tree that shares the arena.
  const std::uint32_t peer_a = a.interner().find("peer");
  EXPECT_NE(peer_a, nfv::util::ScopedInterner::kNotFound);
  EXPECT_EQ(b.interner().find("peer"), peer_a);
  EXPECT_LT(peer_a, nfv::util::ScopedInterner::kPrivateBase);
  // Nothing spilled privately: per-tree interner memory stays empty.
  EXPECT_EQ(a.interner().private_size(), 0u);
  EXPECT_EQ(b.interner().private_size(), 0u);
}

// The satellite counter contract: a WARM line costs exactly one interner
// lookup (the cached head probe) and zero shared-arena mutex
// acquisitions — including under max_signatures cap pressure, where new
// shapes are rejected and must NOT re-probe the arena for their tokens.
TEST(SignatureTreeSharedArena, WarmLinesCostOneProbeUnderCapPressure) {
  nfv::util::SharedInterner arena;
  SignatureTreeConfig config;
  config.max_signatures = 2;
  SignatureTree tree(config, &arena);
  tree.learn("linkdown interface ge-0/0/1 went away");
  tree.learn("peerflap neighbor 10.0.0.1 reset");
  ASSERT_EQ(tree.size(), 2u);

  // Fresh letter-only tokens every line: on the naive path each would
  // be a brand-new intern (a slow probe). At capacity the tree instead
  // reuses/generalizes the closest same-head signature, and the
  // never-admitted tokens must not touch the arena at all.
  const auto word = [](std::size_t i) {
    std::string w = "tok";
    for (int k = 0; k < 3; ++k) {
      w += static_cast<char>('a' + i % 26);
      i /= 26;
    }
    return w;
  };
  const std::uint64_t lookups_before = tree.interner().stats().lookups;
  const std::uint64_t slow_before = tree.interner().stats().slow_probes;
  constexpr std::size_t kLines = 50;
  for (std::size_t i = 0; i < kLines; ++i) {
    tree.learn("linkdown interface " + word(i) + " went away");
    tree.learn("linkdown cable " + word(i + 1000) + " totally gone");
  }
  const std::uint64_t lookups = tree.interner().stats().lookups -
                                lookups_before;
  const std::uint64_t slow = tree.interner().stats().slow_probes -
                             slow_before;
  EXPECT_EQ(lookups, 2u * kLines) << "more than one probe per line";
  EXPECT_EQ(slow, 0u) << "cap-pressure lines re-took the arena mutex";
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.interner().private_size(), 0u);
}

TEST(SignatureTreeSharedArena, ArenaCapSpillsPrivateWithoutReprobing) {
  nfv::util::SharedInterner::Config arena_config;
  arena_config.max_tokens = 3;  // <*>, <empty>, and one real token
  nfv::util::SharedInterner arena(arena_config);
  SignatureTree tree(SignatureTreeConfig{}, &arena);
  tree.learn("alpha beta gamma");
  EXPECT_EQ(tree.pattern(0), "alpha beta gamma");
  EXPECT_GT(tree.interner().private_size(), 0u);  // beta/gamma spilled
  EXPECT_GT(arena.rejected(), 0u);

  // Re-learning resolves every spilled token from the private tier:
  // zero further slow probes, and the template id stays stable.
  const std::uint64_t slow_before = tree.interner().stats().slow_probes;
  EXPECT_EQ(tree.learn("alpha beta gamma"), 0);
  EXPECT_EQ(tree.interner().stats().slow_probes, slow_before);
}

TEST(SignatureTreeSharedArena, OverflowPromotionKeepsPatternsStable) {
  nfv::util::SharedInterner::Config arena_config;
  arena_config.max_tokens = 3;
  nfv::util::SharedInterner arena(arena_config);
  SignatureTree old_tree(SignatureTreeConfig{}, &arena);
  old_tree.learn("alpha latecomer rises");
  ASSERT_EQ(old_tree.pattern(0), "alpha latecomer rises");

  // The spilled token is later promoted fleet-wide. The existing tree's
  // signatures keep rendering (private ids take precedence) and a NEW
  // tree mines the same pattern from the now-shared id.
  arena.register_token("latecomer");
  EXPECT_EQ(old_tree.pattern(0), "alpha latecomer rises");
  EXPECT_EQ(old_tree.learn("alpha latecomer rises"), 0);
  SignatureTree new_tree(SignatureTreeConfig{}, &arena);
  new_tree.learn("alpha latecomer rises");
  EXPECT_EQ(new_tree.pattern(0), old_tree.pattern(0));
  EXPECT_FALSE(
      new_tree.interner().is_private(new_tree.interner().find("latecomer")));
}

TEST(SignatureTreeSharedArena, MemoryBytesExcludesSharedArena) {
  nfv::util::SharedInterner arena;
  SignatureTree shared_tree(SignatureTreeConfig{}, &arena);
  SignatureTree private_tree;
  for (int i = 0; i < 200; ++i) {
    const std::string line = "daemon" + std::to_string(i) +
                             " restarted with fresh configuration";
    shared_tree.learn(line);
    private_tree.learn(line);
  }
  ASSERT_EQ(shared_tree.size(), private_tree.size());
  EXPECT_GT(shared_tree.memory_bytes(), 0u);
  // The shared tree's vocabulary lives in the arena (reported once per
  // fleet), so its per-tree footprint is strictly smaller.
  EXPECT_LT(shared_tree.memory_bytes(), private_tree.memory_bytes());
}

}  // namespace
}  // namespace nfv::logproc
