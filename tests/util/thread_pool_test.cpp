#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.h"

namespace nfv::util {
namespace {

std::vector<std::size_t> test_thread_counts() {
  const std::size_t hw = ThreadPool::resolve_threads(0);
  std::vector<std::size_t> counts = {1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  for (const std::size_t threads : test_thread_counts()) {
    ThreadPool pool(threads);
    std::atomic<int> calls{0};
    pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
    pool.parallel_for(9, 3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, StressEveryIndexRunsExactlyOnce) {
  constexpr std::size_t kTasks = 10000;
  for (const std::size_t threads : test_thread_counts()) {
    ThreadPool pool(threads);
    ASSERT_EQ(pool.size(), threads);
    // Slot-addressed writes: index i touches only slots[i], the pool's
    // determinism contract.
    std::vector<int> slots(kTasks, 0);
    pool.parallel_for(0, kTasks, [&](std::size_t i) { slots[i] += 1; });
    const long total =
        std::accumulate(slots.begin(), slots.end(), 0L);
    EXPECT_EQ(total, static_cast<long>(kTasks)) << "threads=" << threads;
    for (std::size_t i = 0; i < kTasks; ++i) {
      ASSERT_EQ(slots[i], 1) << "index " << i << " threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, NonZeroRangeBaseIsRespected) {
  for (const std::size_t threads : test_thread_counts()) {
    ThreadPool pool(threads);
    std::vector<int> slots(100, 0);
    pool.parallel_for(40, 100, [&](std::size_t i) { slots[i] += 1; });
    for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(slots[i], 0);
    for (std::size_t i = 40; i < 100; ++i) EXPECT_EQ(slots[i], 1);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesAndLowestIndexWins) {
  for (const std::size_t threads : test_thread_counts()) {
    ThreadPool pool(threads);
    std::vector<int> slots(64, 0);
    try {
      pool.parallel_for(0, 64, [&](std::size_t i) {
        slots[i] += 1;
        if (i == 11) throw std::runtime_error("boom at 11");
        if (i == 47) throw std::runtime_error("boom at 47");
      });
      FAIL() << "expected exception, threads=" << threads;
    } catch (const std::runtime_error& e) {
      // Deterministic: the lowest failing index is rethrown — exactly the
      // exception the serial loop would have surfaced first.
      EXPECT_STREQ(e.what(), "boom at 11") << "threads=" << threads;
    }
    // Every index still ran exactly once despite the failures.
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(slots[i], 1) << "index " << i << " threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForIsRejected) {
  ThreadPool pool(4);
  std::atomic<int> rejections{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    try {
      pool.parallel_for(0, 2, [](std::size_t) {});
    } catch (const CheckError&) {
      ++rejections;
    }
  });
  EXPECT_EQ(rejections.load(), 8);

  // Rejection is thread-based, so a *different* pool is refused from
  // inside a region just the same (this is what keeps the blocked matmul
  // from re-entering the global pool underneath the pipeline fan-out).
  ThreadPool other(2);
  std::atomic<int> cross_rejections{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    try {
      other.parallel_for(0, 2, [](std::size_t) {});
    } catch (const CheckError&) {
      ++cross_rejections;
    }
  });
  EXPECT_EQ(cross_rejections.load(), 4);
}

TEST(ThreadPoolTest, InParallelRegionFlag) {
  EXPECT_FALSE(ThreadPool::in_parallel_region());

  // Multi-thread pool: tasks observe the region flag...
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    if (ThreadPool::in_parallel_region()) ++inside;
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(ThreadPool::in_parallel_region());

  // ...while a size-1 pool runs inline as plain serial code, leaving
  // kernels below it free to use the global pool.
  ThreadPool serial(1);
  bool inline_flag = true;
  serial.parallel_for(0, 1, [&](std::size_t) {
    inline_flag = ThreadPool::in_parallel_region();
  });
  EXPECT_FALSE(inline_flag);
}

TEST(ThreadPoolTest, ParallelInvokeRunsAllTasks) {
  for (const std::size_t threads : test_thread_counts()) {
    ThreadPool pool(threads);
    std::vector<int> slots(5, 0);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      tasks.push_back([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
    }
    pool.parallel_invoke(tasks);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::vector<int> slots(256, 0);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, slots.size(),
                      [&](std::size_t i) { slots[i] += 1; });
  }
  for (const int count : slots) EXPECT_EQ(count, 50);
}

TEST(ThreadPoolTest, ResolveThreadsPrecedence) {
  // Explicit request wins outright.
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  // Auto consults NFVPRED_THREADS before hardware concurrency.
  ::setenv("NFVPRED_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 5u);
  ::setenv("NFVPRED_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  ::unsetenv("NFVPRED_THREADS");
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
}

TEST(ThreadPoolTest, ConcurrentTopLevelCallsSerialize) {
  // Two raw threads issuing jobs against the same pool must both complete
  // (the pool queues whole jobs; it never interleaves two job slots).
  ThreadPool pool(4);
  std::vector<int> a(512, 0), b(512, 0);
  std::thread t1([&] {
    for (int round = 0; round < 10; ++round) {
      pool.parallel_for(0, a.size(), [&](std::size_t i) { a[i] += 1; });
    }
  });
  std::thread t2([&] {
    for (int round = 0; round < 10; ++round) {
      pool.parallel_for(0, b.size(), [&](std::size_t i) { b[i] += 1; });
    }
  });
  t1.join();
  t2.join();
  for (const int count : a) EXPECT_EQ(count, 10);
  for (const int count : b) EXPECT_EQ(count, 10);
}

}  // namespace
}  // namespace nfv::util
