#include "util/sim_time.h"

#include <gtest/gtest.h>

namespace nfv::util {
namespace {

TEST(Duration, FactoryHelpers) {
  EXPECT_EQ(Duration::of_seconds(5).seconds, 5);
  EXPECT_EQ(Duration::of_minutes(2).seconds, 120);
  EXPECT_EQ(Duration::of_hours(1).seconds, 3600);
  EXPECT_EQ(Duration::of_days(1).seconds, 86400);
}

TEST(Duration, Arithmetic) {
  const Duration d = Duration::of_hours(2) + Duration::of_minutes(30);
  EXPECT_EQ(d.seconds, 9000);
  EXPECT_EQ((d - Duration::of_minutes(30)).seconds, 7200);
  EXPECT_EQ((Duration::of_minutes(10) * 3).seconds, 1800);
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::of_hours(3).hours(), 3.0);
  EXPECT_DOUBLE_EQ(Duration::of_days(2).days(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::of_minutes(90).hours(), 1.5);
}

TEST(SimTime, ComparisonAndArithmetic) {
  const SimTime t0 = SimTime::epoch();
  const SimTime t1 = t0 + Duration::of_hours(1);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - t0).seconds, 3600);
  EXPECT_EQ((t1 - Duration::of_hours(1)), t0);
}

TEST(SimTime, MonthOf) {
  EXPECT_EQ(month_of(SimTime::epoch()), 0);
  EXPECT_EQ(month_of(month_start(3)), 3);
  EXPECT_EQ(month_of(month_start(3) - Duration::of_seconds(1)), 2);
  EXPECT_EQ(month_of(SimTime{-100}), 0);
}

TEST(SimTime, MonthStartRoundTrip) {
  for (int m = 0; m < 20; ++m) {
    EXPECT_EQ(month_of(month_start(m)), m);
    EXPECT_EQ(month_start(m).seconds, static_cast<std::int64_t>(m) * 30 * 86400);
  }
}

TEST(Format, Time) {
  EXPECT_EQ(format_time(SimTime::epoch()), "m00 d00 00:00:00");
  const SimTime t = month_start(2) + Duration::of_days(5) +
                    Duration::of_hours(4) + Duration::of_minutes(3) +
                    Duration::of_seconds(2);
  EXPECT_EQ(format_time(t), "m02 d05 04:03:02");
}

TEST(Format, Duration) {
  EXPECT_EQ(format_duration(Duration::of_seconds(42)), "42s");
  EXPECT_EQ(format_duration(Duration::of_minutes(15)), "15m");
  EXPECT_EQ(format_duration(Duration::of_hours(2) + Duration::of_minutes(4)),
            "2h4m");
  EXPECT_EQ(format_duration(Duration::of_days(2) + Duration::of_hours(4)),
            "2d4h");
  EXPECT_EQ(format_duration(Duration::of_minutes(-15)), "-15m");
}

}  // namespace
}  // namespace nfv::util
