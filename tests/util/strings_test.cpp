#include "util/strings.h"

#include <gtest/gtest.h>

namespace nfv::util {
namespace {

TEST(Split, BasicWhitespace) {
  const auto pieces = split("a b  c");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(Split, CustomDelimitersAndEmptyPieces) {
  const auto pieces = split("a,,b,c", ",");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
}

TEST(Split, EmptyInput) { EXPECT_TRUE(split("").empty()); }

TEST(Split, TrailingDelimiter) {
  const auto pieces = split("a b ", " ");
  ASSERT_EQ(pieces.size(), 2u);
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Trim, RemovesBothEnds) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(IsAllDigits, Cases) {
  EXPECT_TRUE(is_all_digits("12345"));
  EXPECT_FALSE(is_all_digits("12a45"));
  EXPECT_FALSE(is_all_digits(""));
  EXPECT_FALSE(is_all_digits("-12"));
}

TEST(ContainsDigit, Cases) {
  EXPECT_TRUE(contains_digit("ge-0/0/1"));
  EXPECT_FALSE(contains_digit("keepalive"));
  EXPECT_FALSE(contains_digit(""));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("BGP Peer"), "bgp peer");
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

}  // namespace
}  // namespace nfv::util
