// SharedInterner / ScopedInterner: the fleet-wide token arena's published
// ids must be immutable and readable lock-free while other threads admit
// new tokens (the contract in util/interner.h), capacity rejections must
// spill into the per-view private overflow and never re-take the arena
// mutex, and a privately spilled token later promoted into the arena must
// not change the ids an existing view already handed out. The reader/
// registrar stress runs under TSan via tools/ci.sh (ctest -L concurrency).
#include "util/interner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace nfv::util {
namespace {

std::string token(std::size_t i) { return "token_" + std::to_string(i); }

TEST(SharedInternerTest, ReservedTreeTokensArePreRegistered) {
  SharedInterner arena;
  EXPECT_EQ(arena.find("<*>"), 0u);
  EXPECT_EQ(arena.find("<empty>"), 1u);
  EXPECT_EQ(arena.size(), 2u);
}

TEST(SharedInternerTest, InternIsDenseStableAndIdempotent) {
  SharedInterner arena;
  const std::uint32_t a = arena.intern("alpha");
  const std::uint32_t b = arena.intern("bravo");
  EXPECT_EQ(a, 2u);
  EXPECT_EQ(b, 3u);
  EXPECT_EQ(arena.intern("alpha"), a);
  EXPECT_EQ(arena.find("alpha"), a);
  EXPECT_EQ(arena.view(a), "alpha");
  EXPECT_EQ(arena.view(b), "bravo");
  EXPECT_EQ(arena.find("charlie"), SharedInterner::kNotFound);
}

TEST(SharedInternerTest, ViewsStayStableAcrossGrowth) {
  SharedInterner arena;
  // Capture views early, then force many table growths and chunk
  // rollovers; the early views must still point at the same bytes.
  const std::uint32_t a = arena.intern("stable_alpha");
  const std::string_view va = arena.view(a);
  for (std::size_t i = 0; i < 20000; ++i) arena.intern(token(i));
  EXPECT_EQ(va, "stable_alpha");
  EXPECT_EQ(arena.view(a).data(), va.data());
  EXPECT_EQ(arena.find("stable_alpha"), a);
  EXPECT_EQ(arena.find(token(19999)), 3u + 19999u);
  EXPECT_GT(arena.bytes(), 20000u * sizeof(std::uint32_t));
}

TEST(SharedInternerTest, CapacityCapsRejectAndCount) {
  SharedInterner::Config config;
  config.max_tokens = 4;  // 2 pre-registered + 2 admissible
  SharedInterner arena(config);
  EXPECT_NE(arena.intern("one"), SharedInterner::kNotFound);
  EXPECT_NE(arena.intern("two"), SharedInterner::kNotFound);
  EXPECT_EQ(arena.intern("three"), SharedInterner::kNotFound);
  EXPECT_EQ(arena.rejected(), 1u);
  // Existing tokens still resolve; the registrar path is cap-exempt.
  EXPECT_EQ(arena.intern("one"), 2u);
  const std::uint32_t promoted = arena.register_token("three");
  EXPECT_NE(promoted, SharedInterner::kNotFound);
  EXPECT_EQ(arena.find("three"), promoted);
}

TEST(SharedInternerTest, ByteCapRejectsOversizedToken) {
  SharedInterner::Config config;
  config.max_bytes = 64;
  SharedInterner arena(config);
  const std::string big(100, 'x');
  EXPECT_EQ(arena.intern(big), SharedInterner::kNotFound);
  EXPECT_EQ(arena.rejected(), 1u);
  EXPECT_NE(arena.intern("small"), SharedInterner::kNotFound);
}

TEST(ScopedInternerTest, NoArenaDegeneratesToPlainInterner) {
  ScopedInterner view;
  EXPECT_FALSE(view.shared_mode());
  EXPECT_EQ(view.intern("<*>"), 0u);
  EXPECT_EQ(view.intern("<empty>"), 1u);
  EXPECT_EQ(view.intern("alpha"), 2u);
  EXPECT_EQ(view.view(2u), "alpha");
  EXPECT_TRUE(view.is_private(2u));
  EXPECT_EQ(view.private_size(), 3u);
}

TEST(ScopedInternerTest, SharedIdsAreIdStableAcrossViews) {
  SharedInterner arena;
  ScopedInterner a(&arena);
  ScopedInterner b(&arena);
  // Different intern orders per view: shared ids still agree because the
  // arena assigns them fleet-wide in first-admission order.
  const std::uint32_t a_link = a.intern("linkdown");
  const std::uint32_t a_peer = a.intern("peerflap");
  EXPECT_EQ(b.intern("peerflap"), a_peer);
  EXPECT_EQ(b.intern("linkdown"), a_link);
  EXPECT_FALSE(a.is_private(a_link));
  EXPECT_LT(a_link, ScopedInterner::kPrivateBase);
  EXPECT_EQ(a.view(a_link), "linkdown");
  EXPECT_EQ(b.view(a_link), "linkdown");
  EXPECT_EQ(a.stats().shared_admissions, 2u);
  EXPECT_EQ(b.stats().shared_admissions, 0u);
}

TEST(ScopedInternerTest, CapacityRejectionSpillsPrivateWithoutReprobing) {
  SharedInterner::Config config;
  config.max_tokens = 3;  // room for exactly one admission past <*>/<empty>
  SharedInterner arena(config);
  ScopedInterner view(&arena);
  EXPECT_LT(view.intern("shared_one"), ScopedInterner::kPrivateBase);

  const std::uint32_t spilled = view.intern("overflow_tok");
  EXPECT_GE(spilled, ScopedInterner::kPrivateBase);
  EXPECT_TRUE(view.is_private(spilled));
  EXPECT_EQ(view.view(spilled), "overflow_tok");
  EXPECT_EQ(view.stats().private_spills, 1u);
  const std::uint64_t slow_after_spill = view.stats().slow_probes;

  // Re-interning the rejected token must resolve from the private tier
  // without touching the arena's mutex path again.
  EXPECT_EQ(view.intern("overflow_tok"), spilled);
  EXPECT_EQ(view.find("overflow_tok"), spilled);
  EXPECT_EQ(view.stats().slow_probes, slow_after_spill);
  EXPECT_EQ(arena.rejected(), 1u);
}

TEST(ScopedInternerTest, OverflowPromotionKeepsExistingIdsStable) {
  SharedInterner::Config config;
  config.max_tokens = 3;
  SharedInterner arena(config);
  ScopedInterner old_view(&arena);
  EXPECT_LT(old_view.intern("filler"), ScopedInterner::kPrivateBase);
  const std::uint32_t private_id = old_view.intern("latecomer");
  EXPECT_GE(private_id, ScopedInterner::kPrivateBase);

  // The token is later admitted fleet-wide (registrar promotion). A NEW
  // view resolves the shared id; the OLD view keeps its private id —
  // private takes precedence — so every id it already published into
  // signatures remains valid, and both render the same text.
  const std::uint32_t shared_id = arena.register_token("latecomer");
  EXPECT_LT(shared_id, ScopedInterner::kPrivateBase);
  ScopedInterner new_view(&arena);
  EXPECT_EQ(new_view.intern("latecomer"), shared_id);
  EXPECT_EQ(old_view.intern("latecomer"), private_id);
  EXPECT_EQ(old_view.find("latecomer"), private_id);
  EXPECT_EQ(old_view.view(private_id), new_view.view(shared_id));
}

TEST(ScopedInternerTest, LookupCounterCountsPublicCalls) {
  SharedInterner arena;
  ScopedInterner view(&arena);
  view.intern("a");
  view.find("a");
  view.find("missing");
  EXPECT_EQ(view.stats().lookups, 3u);
  EXPECT_EQ(view.stats().slow_probes, 1u);  // only the cold admission
}

// Readers race a registrar admitting a stream of new tokens (forcing
// chunk rollovers and multiple table growths). Every id a reader obtains
// must immediately round-trip through view(), and previously published
// ids must keep resolving while the table is being swapped. TSan-clean.
TEST(SharedInternerStressTest, LockFreeReadersRaceRegistrar) {
  constexpr std::size_t kTokens = 6000;
  constexpr std::size_t kReaders = 3;
  SharedInterner arena;
  std::atomic<std::uint32_t> published{0};
  std::atomic<bool> done{false};

  std::thread registrar([&] {
    for (std::size_t i = 0; i < kTokens; ++i) {
      const std::uint32_t id = arena.intern(token(i));
      ASSERT_NE(id, SharedInterner::kNotFound);
      published.store(static_cast<std::uint32_t>(i + 1),
                      std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> hits{0};
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t local_hits = 0;
      std::size_t i = r;
      while (!done.load(std::memory_order_acquire) || i < kTokens) {
        const std::uint32_t upto = published.load(std::memory_order_acquire);
        if (i >= upto) {
          if (done.load(std::memory_order_acquire)) break;
          continue;
        }
        const std::string text = token(i);
        // Published before we started: find() must hit, and the id must
        // round-trip through view() to the same bytes.
        const std::uint32_t id = arena.find(text);
        ASSERT_NE(id, SharedInterner::kNotFound);
        ASSERT_EQ(arena.view(id), text);
        ++local_hits;
        i += kReaders;
      }
      hits.fetch_add(local_hits, std::memory_order_relaxed);
    });
  }
  registrar.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GE(hits.load(), kTokens / kReaders);
  EXPECT_EQ(arena.size(), kTokens + 2);
}

// Many scoped views (one per "vPE thread") intern overlapping vocabulary
// concurrently: the double-checked admission must assign exactly one id
// per distinct token, and every view must agree on it. TSan-clean.
TEST(SharedInternerStressTest, ConcurrentViewsAgreeOnSharedIds) {
  constexpr std::size_t kThreads = 4;
  // Prime, so every per-thread stride below is coprime with it and each
  // thread's walk visits the whole vocabulary.
  constexpr std::size_t kVocab = 701;
  SharedInterner arena;
  std::vector<std::vector<std::uint32_t>> ids(
      kThreads, std::vector<std::uint32_t>(kVocab));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScopedInterner view(&arena);
      // Each thread walks the vocabulary with a different stride so
      // admissions interleave instead of one thread winning every race.
      for (std::size_t k = 0; k < kVocab; ++k) {
        const std::size_t i = (k * (t + 1)) % kVocab;
        ids[t][i] = view.intern(token(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(arena.size(), kVocab + 2);
  for (std::size_t t = 1; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kVocab; ++i) {
      ASSERT_EQ(ids[t][i], ids[0][i]) << "token " << i;
      ASSERT_LT(ids[t][i], ScopedInterner::kPrivateBase);
    }
  }
}

}  // namespace
}  // namespace nfv::util
