#include "util/check.h"

#include <gtest/gtest.h>

namespace nfv::util {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(NFV_CHECK(1 + 1 == 2, "math works"));
}

TEST(Check, FailingConditionThrowsWithContext) {
  try {
    NFV_CHECK(false, "value was " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value was 42"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(Check, ActiveInReleaseBuilds) {
  // NDEBUG is normally defined for our build types; NFV_CHECK must still
  // fire (that is its purpose).
  bool threw = false;
  try {
    NFV_CHECK(false, "");
  } catch (const CheckError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace nfv::util
