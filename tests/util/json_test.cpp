// Shared JSON emit + parse: writer structure/escaping/number formatting,
// parser acceptance and rejection, and the round-trip guarantee the
// BENCH_*.json files and the runtime stats dump rely on.
#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace nfv::util {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriterTest, BuildsNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "bench");
  w.kv("ok", true);
  w.kv("count", 42);
  w.kv("ratio", 0.5);
  w.key("tags").begin_array().value("a").value("b").end_array();
  w.key("nested").begin_object().kv("deep", -7).end_object();
  w.key("missing").null();
  w.end_object();
  ASSERT_TRUE(w.complete());

  const auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.has_value()) << w.str();
  EXPECT_EQ(doc->find("name")->string, "bench");
  EXPECT_TRUE(doc->find("ok")->boolean);
  EXPECT_EQ(doc->find("count")->number, 42.0);
  EXPECT_EQ(doc->find("ratio")->number, 0.5);
  ASSERT_EQ(doc->find("tags")->items.size(), 2u);
  EXPECT_EQ(doc->find("tags")->items[1].string, "b");
  EXPECT_EQ(doc->find("nested")->find("deep")->number, -7.0);
  EXPECT_TRUE(doc->find("missing")->is_null());
}

TEST(JsonWriterTest, DoublesRoundTripAndNonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_object();
  w.kv("pi", 3.141592653589793);
  w.kv("tiny", 1e-300);
  w.kv("nan", std::numeric_limits<double>::quiet_NaN());
  w.kv("inf", std::numeric_limits<double>::infinity());
  w.end_object();

  const auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.has_value()) << w.str();
  EXPECT_EQ(doc->find("pi")->number, 3.141592653589793);  // exact round trip
  EXPECT_EQ(doc->find("tiny")->number, 1e-300);
  EXPECT_TRUE(doc->find("nan")->is_null());
  EXPECT_TRUE(doc->find("inf")->is_null());
}

TEST(JsonWriterTest, LargeUnsignedSurvivesAsWritten) {
  JsonWriter w;
  w.begin_object();
  w.kv("max32", std::uint64_t{4294967295});
  w.end_object();
  EXPECT_NE(w.str().find("4294967295"), std::string::npos);
}

TEST(JsonParseTest, AcceptsStandardEscapesIncludingSurrogatePairs) {
  const auto doc =
      json_parse(R"({"s": "a\u0041\n\"\\\u00e9 \uD83D\uDE00"})");
  ASSERT_TRUE(doc.has_value());
  // A = 'A', é = e-acute (2 UTF-8 bytes), 😀 is the
  // surrogate pair for U+1F600 (4 UTF-8 bytes).
  EXPECT_EQ(doc->find("s")->string, "aA\n\"\\\xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json_parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(json_parse("{\"a\": }", &error).has_value());
  EXPECT_FALSE(json_parse("[1, 2,]", &error).has_value());
  EXPECT_FALSE(json_parse("true false", &error).has_value());  // garbage tail
  EXPECT_FALSE(json_parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(json_parse("nul", &error).has_value());
}

TEST(JsonParseTest, ParsesNumbersBoolsAndNesting) {
  const auto doc = json_parse(
      R"({"a": [1, -2.5, 1e3, {"b": false}], "c": null})");
  ASSERT_TRUE(doc.has_value());
  const JsonValue* a = doc->find("a");
  ASSERT_EQ(a->items.size(), 4u);
  EXPECT_EQ(a->items[0].number, 1.0);
  EXPECT_EQ(a->items[1].number, -2.5);
  EXPECT_EQ(a->items[2].number, 1000.0);
  EXPECT_FALSE(a->items[3].find("b")->boolean);
  EXPECT_TRUE(doc->find("c")->is_null());
}

}  // namespace
}  // namespace nfv::util
