#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace nfv::util {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptyInputs) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 7.0);
}

TEST(Quantile, RejectsEmptyAndBadQ) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), CheckError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, 1.5), CheckError);
  EXPECT_THROW(quantile(xs, -0.1), CheckError);
}

TEST(Quantiles, BatchMatchesSingle) {
  const std::vector<double> xs{5.0, 1.0, 9.0, 3.0, 7.0};
  const std::vector<double> qs{0.0, 0.25, 0.5, 0.75, 1.0};
  const auto batch = quantiles(xs, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], quantile(xs, qs[i]));
  }
}

TEST(CosineSimilarity, IdenticalVectors) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_NEAR(cosine_similarity(a, a), 1.0, 1e-12);
}

TEST(CosineSimilarity, OrthogonalVectors) {
  const std::vector<double> a{1.0, 0.0};
  const std::vector<double> b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(CosineSimilarity, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-12);
}

TEST(CosineSimilarity, ZeroVectorGivesZero) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(CosineSimilarity, SizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(cosine_similarity(a, b), CheckError);
}

TEST(NormalizeL1, SumsToOne) {
  std::vector<double> xs{1.0, 3.0, 4.0};
  normalize_l1(xs);
  EXPECT_DOUBLE_EQ(xs[0] + xs[1] + xs[2], 1.0);
  EXPECT_DOUBLE_EQ(xs[0], 0.125);
}

TEST(NormalizeL1, AllZeroIsNoop) {
  std::vector<double> xs{0.0, 0.0};
  normalize_l1(xs);
  EXPECT_DOUBLE_EQ(xs[0], 0.0);
}

TEST(EmpiricalCdf, MonotoneAndComplete) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].cumulative_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf.back().value, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_fraction, 1.0);
}

TEST(EmpiricalCdf, SampledKeepsEndpoints) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(static_cast<double>(i));
  const auto sampled = empirical_cdf_sampled(xs, 10);
  ASSERT_EQ(sampled.size(), 10u);
  EXPECT_DOUBLE_EQ(sampled.front().value, 0.0);
  EXPECT_DOUBLE_EQ(sampled.back().value, 999.0);
}

TEST(EmpiricalCdf, SampledSmallInputReturnedWhole) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(empirical_cdf_sampled(xs, 10).size(), 2u);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 2.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.total(), 2.5);
}

TEST(Histogram, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
}

TEST(RunningStats, TracksMinMaxMean) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  stats.add(3.0);
  stats.add(-1.0);
  stats.add(4.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
}

}  // namespace
}  // namespace nfv::util
