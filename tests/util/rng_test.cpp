#include "util/rng.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace nfv::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkIsIndependentOfSiblingCount) {
  // A child stream must not change when more siblings are forked later
  // from a *different* parent draw — forks consume exactly one parent draw.
  Rng parent1(7);
  Rng child_a = parent1.fork(5);
  Rng parent2(7);
  Rng child_b = parent2.fork(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(42);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) ++seen[rng.uniform_index(7)];
  for (int count : seen) EXPECT_GT(count, 700);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(42);
  EXPECT_THROW(rng.uniform_index(0), CheckError);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(42);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(42);
  EXPECT_THROW(rng.exponential(0.0), CheckError);
  EXPECT_THROW(rng.exponential(-1.0), CheckError);
}

TEST(Rng, LognormalMedian) {
  Rng rng(42);
  const int n = 100001;
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.lognormal(std::log(100.0), 1.0);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 100.0, 3.0);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(42);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(42);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(42);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(42);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(42);
  const double weights[] = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(42);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(weights), CheckError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(42);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(DiscreteSampler, MatchesCategoricalDistribution) {
  Rng rng(42);
  const std::vector<double> weights{2.0, 1.0, 1.0};
  DiscreteSampler sampler(weights);
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
}

TEST(DiscreteSampler, EmptyByDefault) {
  DiscreteSampler sampler;
  EXPECT_TRUE(sampler.empty());
}

TEST(DiscreteSampler, RejectsNegativeWeights) {
  const std::vector<double> weights{1.0, -0.5};
  EXPECT_THROW(DiscreteSampler{weights}, CheckError);
}

TEST(DiscreteSampler, SingleElement) {
  Rng rng(42);
  const std::vector<double> weights{3.0};
  DiscreteSampler sampler(weights);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
}

}  // namespace
}  // namespace nfv::util
