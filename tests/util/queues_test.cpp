// Ring-buffer semantics (SPSC + MPSC): FIFO order, bounded capacity with
// try-push backpressure, close/drain behaviour, and multi-threaded stress
// runs that TSan checks for data races (ctest -L concurrency).
#include "util/mpsc_queue.h"
#include "util/spsc_queue.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace nfv::util {
namespace {

TEST(SpscQueueTest, FifoOrderAndCapacityRounding) {
  SpscQueue<int> queue(3);  // rounds up to 4
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99));  // full: backpressure, not a drop
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));  // empty
}

TEST(SpscQueueTest, CloseDrainsBeforeReportingExhaustion) {
  SpscQueue<std::string> queue(8);
  EXPECT_TRUE(queue.push("a"));
  EXPECT_TRUE(queue.push("b"));
  queue.close();
  EXPECT_FALSE(queue.push("c"));      // closed: push fails
  EXPECT_FALSE(queue.try_push("c"));
  std::string out;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, "b");
  EXPECT_FALSE(queue.pop(out));  // closed AND drained
}

TEST(SpscQueueTest, BlockingHandoffAcrossThreads) {
  // Tiny capacity forces the producer through the blocking-push
  // (backpressure) path many times; the consumer must still see every
  // value exactly once, in order.
  constexpr int kItems = 20000;
  SpscQueue<int> queue(2);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.push(i));
    queue.close();
  });
  int expected = 0;
  int out = -1;
  while (queue.pop(out)) {
    ASSERT_EQ(out, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(MpscQueueTest, FifoOrderAndBackpressure) {
  MpscQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
  // Space freed: pushes work again.
  EXPECT_TRUE(queue.try_push(7));
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 7);
}

TEST(MpscQueueTest, CloseDrainsBeforeReportingExhaustion) {
  MpscQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  queue.close();
  EXPECT_FALSE(queue.push(2));
  int out = -1;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(queue.pop(out));
}

TEST(MpscQueueTest, ManyProducersLoseNothingAndKeepPerProducerOrder) {
  // 4 producers push tagged sequences through a deliberately small ring;
  // the single consumer must observe every item exactly once AND each
  // producer's items in order — the property per-vPE warning
  // determinism rests on.
  constexpr std::size_t kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue<std::pair<std::size_t, int>> queue(8);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push({p, i}));
      }
    });
  }

  std::vector<int> next(kProducers, 0);
  std::size_t total = 0;
  std::pair<std::size_t, int> out;
  while (total < kProducers * kPerProducer) {
    if (queue.try_pop(out)) {
      ASSERT_LT(out.first, kProducers);
      ASSERT_EQ(out.second, next[out.first]) << "producer " << out.first;
      ++next[out.first];
      ++total;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& producer : producers) producer.join();
  EXPECT_FALSE(queue.try_pop(out));
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer);
  }
}

}  // namespace
}  // namespace nfv::util
