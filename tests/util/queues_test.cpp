// Ring-buffer semantics (SPSC + MPSC): FIFO order, bounded capacity with
// try-push backpressure, close/drain behaviour, and multi-threaded stress
// runs that TSan checks for data races (ctest -L concurrency).
#include "util/mpsc_queue.h"
#include "util/spsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace nfv::util {
namespace {

TEST(SpscQueueTest, FifoOrderAndCapacityRounding) {
  SpscQueue<int> queue(3);  // rounds up to 4
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99));  // full: backpressure, not a drop
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));  // empty
}

TEST(SpscQueueTest, CloseDrainsBeforeReportingExhaustion) {
  SpscQueue<std::string> queue(8);
  EXPECT_TRUE(queue.push("a"));
  EXPECT_TRUE(queue.push("b"));
  queue.close();
  EXPECT_FALSE(queue.push("c"));      // closed: push fails
  EXPECT_FALSE(queue.try_push("c"));
  std::string out;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, "b");
  EXPECT_FALSE(queue.pop(out));  // closed AND drained
}

TEST(SpscQueueTest, BlockingHandoffAcrossThreads) {
  // Tiny capacity forces the producer through the blocking-push
  // (backpressure) path many times; the consumer must still see every
  // value exactly once, in order.
  constexpr int kItems = 20000;
  SpscQueue<int> queue(2);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.push(i));
    queue.close();
  });
  int expected = 0;
  int out = -1;
  while (queue.pop(out)) {
    ASSERT_EQ(out, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(MpscQueueTest, FifoOrderAndBackpressure) {
  MpscQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
  // Space freed: pushes work again.
  EXPECT_TRUE(queue.try_push(7));
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 7);
}

TEST(MpscQueueTest, CloseDrainsBeforeReportingExhaustion) {
  MpscQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  queue.close();
  EXPECT_FALSE(queue.push(2));
  int out = -1;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(queue.pop(out));
}

TEST(MpscQueueTest, ManyProducersLoseNothingAndKeepPerProducerOrder) {
  // 4 producers push tagged sequences through a deliberately small ring;
  // the single consumer must observe every item exactly once AND each
  // producer's items in order — the property per-vPE warning
  // determinism rests on.
  constexpr std::size_t kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue<std::pair<std::size_t, int>> queue(8);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push({p, i}));
      }
    });
  }

  std::vector<int> next(kProducers, 0);
  std::size_t total = 0;
  std::pair<std::size_t, int> out;
  while (total < kProducers * kPerProducer) {
    if (queue.try_pop(out)) {
      ASSERT_LT(out.first, kProducers);
      ASSERT_EQ(out.second, next[out.first]) << "producer " << out.first;
      ++next[out.first];
      ++total;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& producer : producers) producer.join();
  EXPECT_FALSE(queue.try_pop(out));
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer);
  }
}

template <typename Queue>
void expect_deterministic_stall_counting() {
  Queue queue(4);
  EXPECT_EQ(queue.stall_count(), 0u);
  EXPECT_EQ(queue.depth(), 0u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.try_push(i));
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.depth(), queue.capacity());  // never exceeds capacity
  // Every failed try_push on the full ring counts exactly once.
  EXPECT_FALSE(queue.try_push(99));
  EXPECT_FALSE(queue.try_push(99));
  EXPECT_FALSE(queue.try_push(99));
  EXPECT_EQ(queue.stall_count(), 3u);
  int out = -1;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(queue.depth(), 3u);
  // Space available again: success does not touch the counter.
  EXPECT_TRUE(queue.try_push(5));
  EXPECT_EQ(queue.stall_count(), 3u);
}

TEST(SpscQueueTest, TryPushStallCountingIsDeterministic) {
  expect_deterministic_stall_counting<SpscQueue<int>>();
}

TEST(MpscQueueTest, TryPushStallCountingIsDeterministic) {
  expect_deterministic_stall_counting<MpscQueue<int>>();
}

template <typename Queue>
void expect_wraparound_fifo_at_capacity() {
  // Drive the indices far past one lap of the ring: FIFO order, the full/
  // empty edges, and the depth gauge must all survive wrap-around.
  Queue queue(4);
  int next_push = 0;
  int next_pop = 0;
  int out = -1;
  for (int lap = 0; lap < 6; ++lap) {
    while (queue.try_push(int{next_push})) ++next_push;  // fill to the brim
    EXPECT_EQ(queue.depth(), queue.capacity()) << "lap " << lap;
    EXPECT_FALSE(queue.try_push(next_push)) << "lap " << lap;
    // Drain half, refill, drain all: exercises every head/tail phase.
    for (std::size_t i = 0; i < queue.capacity() / 2; ++i) {
      ASSERT_TRUE(queue.try_pop(out));
      EXPECT_EQ(out, next_pop++);
    }
    while (queue.try_push(int{next_push})) ++next_push;
    while (queue.try_pop(out)) {
      EXPECT_EQ(out, next_pop++);
      EXPECT_LE(queue.depth(), queue.capacity());
    }
    EXPECT_EQ(queue.depth(), 0u) << "lap " << lap;
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_GT(next_push, static_cast<int>(3 * queue.capacity()));
}

TEST(SpscQueueTest, WrapAroundAtCapacityKeepsFifoAndGauge) {
  expect_wraparound_fifo_at_capacity<SpscQueue<int>>();
}

TEST(MpscQueueTest, WrapAroundAtCapacityKeepsFifoAndGauge) {
  expect_wraparound_fifo_at_capacity<MpscQueue<int>>();
}

TEST(SpscQueueTest, BlockingPushCountsOneStallPerEpisodeNotPerSpin) {
  // A blocked push() spins/sleeps many times before space frees up; the
  // stall counter must report ONE backpressure episode, not thousands of
  // retry iterations.
  SpscQueue<int> queue(2);
  ASSERT_TRUE(queue.push(0));
  ASSERT_TRUE(queue.push(1));
  EXPECT_EQ(queue.stall_count(), 0u);
  std::thread consumer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int out = -1;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 0);
  });
  ASSERT_TRUE(queue.push(2));  // blocks ~20ms on the full ring
  consumer.join();
  EXPECT_LE(queue.stall_count(), 1u);
}

template <typename Queue>
void expect_gauges_sane_under_stress(std::size_t producers) {
  // Producers + consumer + a sampler hammering the observability surface:
  // the depth gauge must never exceed capacity or underflow ("go
  // negative" would wrap to a huge size_t), and stall_count must be
  // monotonic. TSan (ctest -L concurrency) checks the accesses race-free.
  constexpr int kPerProducer = 4000;
  Queue queue(8);
  std::atomic<bool> done{false};

  std::thread sampler([&] {
    std::uint64_t last_stalls = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t depth = queue.depth();
      EXPECT_LE(depth, queue.capacity());
      const std::uint64_t stalls = queue.stall_count();
      EXPECT_GE(stalls, last_stalls);
      last_stalls = stalls;
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t p = 0; p < producers; ++p) {
    workers.emplace_back([&queue] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!queue.try_push(int{i})) ASSERT_TRUE(queue.push(int{i}));
      }
    });
  }
  std::size_t total = 0;
  int out = -1;
  while (total < producers * kPerProducer) {
    if (queue.try_pop(out)) {
      ++total;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& worker : workers) worker.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(SpscQueueTest, DepthGaugeStaysInBoundsUnderStress) {
  expect_gauges_sane_under_stress<SpscQueue<int>>(1);
}

TEST(MpscQueueTest, DepthGaugeStaysInBoundsUnderStress) {
  expect_gauges_sane_under_stress<MpscQueue<int>>(3);
}

}  // namespace
}  // namespace nfv::util
