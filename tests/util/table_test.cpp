#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nfv::util {
namespace {

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
}

TEST(Table, TitlePrinted) {
  Table table({"a"}, "My Title");
  std::ostringstream oss;
  table.print(oss);
  EXPECT_NE(oss.str().find("== My Title =="), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_EQ(table.row_count(), 1u);
  std::ostringstream oss;
  table.print(oss);  // must not crash on missing cells
  EXPECT_NE(oss.str().find("only-one"), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  Table table({"label", "v1", "v2"});
  table.add_row_numeric("row", {1.23456, 2.0}, 2);
  std::ostringstream oss;
  table.print(oss);
  EXPECT_NE(oss.str().find("1.23"), std::string::npos);
  EXPECT_NE(oss.str().find("2.00"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(1.5, 0), "2");
  EXPECT_EQ(fmt_double(3.14159, 3), "3.142");
}

}  // namespace
}  // namespace nfv::util
