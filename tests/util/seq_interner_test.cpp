// SharedSeqInterner: the SharedInterner publication machinery
// generalized to u32 sequences — the node store under the shared
// signature forest. Pins the same contract shared_interner_test pins
// for byte strings: dense stable idempotent ids, views stable across
// growth, capacity caps that reject (and count) instead of corrupting,
// a cap-exempt registrar path, and lock-free readers racing admission
// (the stress tests are what tools/ci.sh runs under ThreadSanitizer:
// ctest -L forest).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/seq_interner.h"

namespace nfv::util {
namespace {

/// Deterministic distinct sequence for index `i`: first word is `i`
/// (uniqueness), length varies 2..5 so chunk packing is irregular.
std::vector<std::uint32_t> seq(std::size_t i) {
  std::vector<std::uint32_t> words;
  const std::size_t length = 2 + i % 4;
  words.push_back(static_cast<std::uint32_t>(i));
  for (std::size_t k = 1; k < length; ++k) {
    words.push_back(static_cast<std::uint32_t>(i * 2654435761u + k));
  }
  return words;
}

void expect_view_equals(const SharedSeqInterner& interner, std::uint32_t id,
                        const std::vector<std::uint32_t>& words) {
  const SharedSeqInterner::Seq v = interner.view(id);
  ASSERT_EQ(v.length, words.size());
  for (std::size_t k = 0; k < words.size(); ++k) {
    ASSERT_EQ(v.data[k], words[k]) << "id " << id << " word " << k;
  }
}

TEST(SharedSeqInternerTest, InternIsDenseStableAndIdempotent) {
  SharedSeqInterner interner;
  constexpr std::size_t kSeqs = 100;
  for (std::size_t i = 0; i < kSeqs; ++i) {
    const std::vector<std::uint32_t> words = seq(i);
    const std::uint32_t id = interner.intern(words.data(), words.size());
    ASSERT_EQ(id, static_cast<std::uint32_t>(i)) << "ids must be dense";
  }
  EXPECT_EQ(interner.size(), kSeqs);
  for (std::size_t i = 0; i < kSeqs; ++i) {
    const std::vector<std::uint32_t> words = seq(i);
    // Idempotent: re-intern and lock-free find agree on the same id.
    EXPECT_EQ(interner.intern(words.data(), words.size()),
              static_cast<std::uint32_t>(i));
    EXPECT_EQ(interner.find(words.data(), words.size()),
              static_cast<std::uint32_t>(i));
    expect_view_equals(interner, static_cast<std::uint32_t>(i), words);
  }
  EXPECT_EQ(interner.size(), kSeqs);  // no duplicates admitted
  EXPECT_EQ(interner.rejected(), 0u);
}

TEST(SharedSeqInternerTest, PrefixAndLengthDisambiguate) {
  SharedSeqInterner interner;
  const std::vector<std::uint32_t> longer = {7, 8, 9, 10};
  const std::uint32_t long_id = interner.intern(longer.data(), longer.size());
  // A strict prefix is a DIFFERENT sequence, not a hit on the longer one.
  const std::uint32_t short_id = interner.intern(longer.data(), 2);
  EXPECT_NE(long_id, short_id);
  EXPECT_EQ(interner.find(longer.data(), 2), short_id);
  EXPECT_EQ(interner.find(longer.data(), longer.size()), long_id);
}

TEST(SharedSeqInternerTest, ViewsStayStableAcrossGrowth) {
  SharedSeqInterner interner;
  // Capture early views, then force both id-table growth (well past the
  // initial slot count) and multiple word-chunk doublings.
  constexpr std::size_t kEarly = 8;
  std::vector<SharedSeqInterner::Seq> early(kEarly);
  for (std::size_t i = 0; i < kEarly; ++i) {
    const std::vector<std::uint32_t> words = seq(i);
    early[i] = interner.view(interner.intern(words.data(), words.size()));
  }
  constexpr std::size_t kSeqs = 5000;
  for (std::size_t i = kEarly; i < kSeqs; ++i) {
    const std::vector<std::uint32_t> words = seq(i);
    ASSERT_EQ(interner.intern(words.data(), words.size()),
              static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < kEarly; ++i) {
    const std::vector<std::uint32_t> words = seq(i);
    // The pointer captured before any growth must still be the live one.
    const SharedSeqInterner::Seq now = interner.view(static_cast<std::uint32_t>(i));
    EXPECT_EQ(early[i].data, now.data) << "view moved on growth";
    expect_view_equals(interner, static_cast<std::uint32_t>(i), words);
  }
  EXPECT_GT(interner.words(), kSeqs * 2);  // lengths are 2..5
  EXPECT_GT(interner.bytes(), interner.words() * sizeof(std::uint32_t));
}

TEST(SharedSeqInternerTest, SeqCapRejectsAndCounts) {
  SharedSeqInterner::Config config;
  config.max_seqs = 4;
  SharedSeqInterner interner(config);
  for (std::size_t i = 0; i < 4; ++i) {
    const std::vector<std::uint32_t> words = seq(i);
    ASSERT_EQ(interner.intern(words.data(), words.size()),
              static_cast<std::uint32_t>(i));
  }
  const std::vector<std::uint32_t> fifth = seq(4);
  EXPECT_EQ(interner.intern(fifth.data(), fifth.size()),
            SharedSeqInterner::kNotFound);
  EXPECT_EQ(interner.rejected(), 1u);
  EXPECT_EQ(interner.size(), 4u);
  // Existing sequences stay intact after a rejection: find and re-intern
  // still hit without counting as admissions.
  const std::vector<std::uint32_t> first = seq(0);
  EXPECT_EQ(interner.find(first.data(), first.size()), 0u);
  EXPECT_EQ(interner.intern(first.data(), first.size()), 0u);
  EXPECT_EQ(interner.rejected(), 1u);
}

TEST(SharedSeqInternerTest, WordCapRejectsAndCounts) {
  SharedSeqInterner::Config config;
  config.max_words = 8;
  SharedSeqInterner interner(config);
  const std::vector<std::uint32_t> a = {1, 2, 3};
  const std::vector<std::uint32_t> b = {4, 5, 6};
  const std::vector<std::uint32_t> c = {7, 8, 9};
  EXPECT_EQ(interner.intern(a.data(), a.size()), 0u);
  EXPECT_EQ(interner.intern(b.data(), b.size()), 1u);  // 6 of 8 words
  EXPECT_EQ(interner.intern(c.data(), c.size()),
            SharedSeqInterner::kNotFound);  // would be 9 > 8
  EXPECT_EQ(interner.rejected(), 1u);
  EXPECT_EQ(interner.words(), 6u);
}

TEST(SharedSeqInternerTest, RegisterSeqIsCapExempt) {
  SharedSeqInterner::Config config;
  config.max_seqs = 1;
  SharedSeqInterner interner(config);
  const std::vector<std::uint32_t> a = seq(0);
  const std::vector<std::uint32_t> b = seq(1);
  EXPECT_EQ(interner.intern(a.data(), a.size()), 0u);
  EXPECT_EQ(interner.intern(b.data(), b.size()),
            SharedSeqInterner::kNotFound);
  // The registrar path admits past the cap (catalog pre-seeding) —
  // and the admitted sequence is then a normal hit for intern().
  EXPECT_EQ(interner.register_seq(b.data(), b.size()), 1u);
  EXPECT_EQ(interner.intern(b.data(), b.size()), 1u);
  EXPECT_EQ(interner.size(), 2u);
}

// One registrar publishes sequences in order while lock-free readers
// chase the published frontier: every find() on a published sequence
// must hit, and its view() must round-trip the exact words. TSan-clean.
TEST(SharedSeqInternerStressTest, LockFreeReadersRaceRegistrar) {
  constexpr std::size_t kSeqs = 6000;
  constexpr std::size_t kReaders = 3;
  SharedSeqInterner interner;
  std::atomic<std::uint32_t> published{0};
  std::atomic<bool> done{false};

  std::thread registrar([&] {
    for (std::size_t i = 0; i < kSeqs; ++i) {
      const std::vector<std::uint32_t> words = seq(i);
      const std::uint32_t id = interner.intern(words.data(), words.size());
      ASSERT_NE(id, SharedSeqInterner::kNotFound);
      published.store(static_cast<std::uint32_t>(i + 1),
                      std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> hits{0};
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t local_hits = 0;
      std::size_t i = r;
      while (!done.load(std::memory_order_acquire) || i < kSeqs) {
        const std::uint32_t upto = published.load(std::memory_order_acquire);
        if (i >= upto) {
          if (done.load(std::memory_order_acquire)) break;
          continue;
        }
        const std::vector<std::uint32_t> words = seq(i);
        const std::uint32_t id = interner.find(words.data(), words.size());
        ASSERT_NE(id, SharedSeqInterner::kNotFound);
        const SharedSeqInterner::Seq v = interner.view(id);
        ASSERT_EQ(v.length, words.size());
        for (std::size_t k = 0; k < words.size(); ++k) {
          ASSERT_EQ(v.data[k], words[k]);
        }
        ++local_hits;
        i += kReaders;
      }
      hits.fetch_add(local_hits, std::memory_order_relaxed);
    });
  }
  registrar.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GE(hits.load(), kSeqs / kReaders);
  EXPECT_EQ(interner.size(), kSeqs);
}

// Many "vPE trees" admit an overlapping template vocabulary
// concurrently: the double-checked admission must assign exactly one id
// per distinct sequence, and every thread must agree on it. TSan-clean.
TEST(SharedSeqInternerStressTest, ConcurrentAdmissionsAgreeOnIds) {
  constexpr std::size_t kThreads = 4;
  // Prime, so every per-thread stride below is coprime with it and each
  // thread's walk visits the whole vocabulary.
  constexpr std::size_t kVocab = 701;
  SharedSeqInterner interner;
  std::vector<std::vector<std::uint32_t>> ids(
      kThreads, std::vector<std::uint32_t>(kVocab));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Different strides so admissions interleave instead of one thread
      // winning every race.
      for (std::size_t k = 0; k < kVocab; ++k) {
        const std::size_t i = (k * (t + 1)) % kVocab;
        const std::vector<std::uint32_t> words = seq(i);
        ids[t][i] = interner.intern(words.data(), words.size());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(interner.size(), kVocab);
  for (std::size_t t = 1; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kVocab; ++i) {
      ASSERT_EQ(ids[t][i], ids[0][i]) << "sequence " << i;
      ASSERT_NE(ids[t][i], SharedSeqInterner::kNotFound);
    }
  }
}

}  // namespace
}  // namespace nfv::util
