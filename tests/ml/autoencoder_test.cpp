#include "ml/autoencoder.h"

#include <gtest/gtest.h>

#include "ml/optimizer.h"
#include "util/check.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

/// Structured data on a 2-D manifold inside R^8: x = [a, a, b, b, a+b, ...].
Matrix manifold_batch(std::size_t rows, Rng& rng) {
  Matrix m(rows, 8);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto a = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto b = static_cast<float>(rng.uniform(-1.0, 1.0));
    float* row = m.row(r);
    row[0] = a;
    row[1] = a;
    row[2] = b;
    row[3] = b;
    row[4] = a + b;
    row[5] = a - b;
    row[6] = 0.5f * a;
    row[7] = 0.5f * b;
  }
  return m;
}

AutoencoderConfig small_config() {
  AutoencoderConfig config;
  config.input_dim = 8;
  config.encoder = {6, 3};
  return config;
}

TEST(Autoencoder, ReconstructionLossDecreases) {
  Rng rng(21);
  Autoencoder ae(small_config(), rng);
  Adam adam(3e-3f);
  adam.bind(ae.params());
  Rng data_rng(5);
  double first = 0.0;
  double last = 0.0;
  for (int i = 0; i < 300; ++i) {
    const Matrix batch = manifold_batch(16, data_rng);
    const double loss = ae.train_batch(batch, adam);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.3);
}

TEST(Autoencoder, OffManifoldScoresHigher) {
  Rng rng(23);
  Autoencoder ae(small_config(), rng);
  Adam adam(3e-3f);
  adam.bind(ae.params());
  Rng data_rng(7);
  for (int i = 0; i < 400; ++i) {
    ae.train_batch(manifold_batch(16, data_rng), adam);
  }
  // On-manifold vs random (off-manifold) points.
  const Matrix normal = manifold_batch(32, data_rng);
  Matrix anomalous(32, 8);
  for (std::size_t i = 0; i < anomalous.size(); ++i) {
    anomalous.data()[i] = static_cast<float>(data_rng.uniform(-1.0, 1.0));
  }
  const auto normal_err = ae.reconstruction_error(normal);
  const auto anomalous_err = ae.reconstruction_error(anomalous);
  double normal_mean = 0.0;
  double anomalous_mean = 0.0;
  for (double e : normal_err) normal_mean += e;
  for (double e : anomalous_err) anomalous_mean += e;
  EXPECT_GT(anomalous_mean / 32.0, 2.0 * normal_mean / 32.0);
}

TEST(Autoencoder, ReconstructPreservesShape) {
  Rng rng(25);
  Autoencoder ae(small_config(), rng);
  Rng data_rng(9);
  const Matrix batch = manifold_batch(5, data_rng);
  Matrix output;
  ae.reconstruct(batch, output);
  EXPECT_EQ(output.rows(), 5u);
  EXPECT_EQ(output.cols(), 8u);
}

TEST(Autoencoder, SymmetricLayerStack) {
  Rng rng(27);
  Autoencoder ae(small_config(), rng);
  // encoder {6,3} → layers 8→6→3→6→8 = 4 Dense layers = 8 params.
  EXPECT_EQ(ae.params().size(), 8u);
}

TEST(Autoencoder, FreezeLowerLayers) {
  Rng rng(29);
  Autoencoder ae(small_config(), rng);
  ae.freeze_lower_layers(1);  // only the last layer trainable
  const auto params = ae.params();
  // 4 layers × 2 params; first 3 layers frozen.
  for (std::size_t i = 0; i < 6; ++i) EXPECT_TRUE(params[i]->frozen);
  for (std::size_t i = 6; i < 8; ++i) EXPECT_FALSE(params[i]->frozen);
  ae.freeze_lower_layers(99);  // everything trainable again
  for (Param* p : ae.params()) EXPECT_FALSE(p->frozen);
}

TEST(Autoencoder, RejectsInvalidConfig) {
  Rng rng(31);
  AutoencoderConfig no_input;
  no_input.encoder = {4};
  EXPECT_THROW(Autoencoder(no_input, rng), nfv::util::CheckError);
  AutoencoderConfig no_layers;
  no_layers.input_dim = 8;
  no_layers.encoder = {};
  EXPECT_THROW(Autoencoder(no_layers, rng), nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::ml
