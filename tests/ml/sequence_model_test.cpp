#include "ml/sequence_model.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/loss.h"
#include "ml/optimizer.h"
#include "util/check.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

SequenceModelConfig small_config() {
  SequenceModelConfig config;
  config.vocab = 8;
  config.embed_dim = 6;
  config.hidden = 12;
  config.layers = 2;
  config.window = 4;
  return config;
}

/// Deterministic pattern: template (i % vocab) follows i-1, so the next
/// template is always (last + 1) % vocab. Learnable by a tiny LSTM.
std::vector<SeqExample> cyclic_examples(std::size_t vocab,
                                        std::size_t window,
                                        std::size_t count) {
  std::vector<SeqExample> out;
  for (std::size_t s = 0; s < count; ++s) {
    SeqExample ex;
    for (std::size_t j = 0; j < window; ++j) {
      ex.ids.push_back(static_cast<std::int32_t>((s + j) % vocab));
      ex.dts.push_back(30.0f);
    }
    ex.target = static_cast<std::int32_t>((s + window) % vocab);
    out.push_back(std::move(ex));
  }
  return out;
}

TEST(SequenceModel, LearnsCyclicPattern) {
  Rng rng(3);
  SequenceModel model(small_config(), rng);
  const auto examples = cyclic_examples(8, 4, 64);
  std::vector<const SeqExample*> batch;
  for (const auto& ex : examples) batch.push_back(&ex);

  Adam adam(5e-3f);
  adam.bind(model.params());
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const double loss = model.train_batch(batch, adam);
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.2);

  // The learned model should assign high probability to the true target.
  const std::vector<double> lls = model.score_log_likelihood(batch);
  double mean_ll = 0.0;
  for (double ll : lls) mean_ll += ll;
  mean_ll /= static_cast<double>(lls.size());
  EXPECT_GT(mean_ll, std::log(0.5));
}

TEST(SequenceModel, AnomalousContinuationScoresLow) {
  Rng rng(3);
  SequenceModel model(small_config(), rng);
  const auto examples = cyclic_examples(8, 4, 64);
  std::vector<const SeqExample*> batch;
  for (const auto& ex : examples) batch.push_back(&ex);
  Adam adam(5e-3f);
  adam.bind(model.params());
  for (int epoch = 0; epoch < 60; ++epoch) model.train_batch(batch, adam);

  SeqExample normal = examples[0];
  SeqExample anomalous = examples[0];
  anomalous.target = (normal.target + 3) % 8;  // wrong continuation
  const auto lls =
      model.score_log_likelihood({&normal, &anomalous});
  EXPECT_GT(lls[0], lls[1] + 1.0);  // ≥ e× likelihood gap
}

TEST(SequenceModel, PredictReturnsDistribution) {
  Rng rng(5);
  SequenceModel model(small_config(), rng);
  const auto examples = cyclic_examples(8, 4, 3);
  std::vector<const SeqExample*> batch;
  for (const auto& ex : examples) batch.push_back(&ex);
  Matrix probs;
  model.predict(batch, probs);
  ASSERT_EQ(probs.rows(), 3u);
  ASSERT_EQ(probs.cols(), 8u);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    float total = 0.0f;
    for (std::size_t c = 0; c < probs.cols(); ++c) {
      EXPECT_GE(probs.at(r, c), 0.0f);
      total += probs.at(r, c);
    }
    EXPECT_NEAR(total, 1.0f, 1e-4f);
  }
}

TEST(SequenceModel, PredictMatchesTrainingForwardPass) {
  // The stateful inference path must agree with the cached training path.
  Rng rng(7);
  SequenceModel model(small_config(), rng);
  const auto examples = cyclic_examples(8, 4, 5);
  std::vector<const SeqExample*> batch;
  for (const auto& ex : examples) batch.push_back(&ex);

  Matrix probs;
  model.predict(batch, probs);
  // Run a zero-lr train step; the reported loss must equal the mean
  // -log p(target) from predict's probabilities.
  double expected = 0.0;
  for (std::size_t r = 0; r < batch.size(); ++r) {
    expected -= log_prob(probs, r, batch[r]->target);
  }
  expected /= static_cast<double>(batch.size());
  Sgd zero_lr(0.0f);
  zero_lr.bind(model.params());
  const double loss = model.train_batch(batch, zero_lr);
  EXPECT_NEAR(loss, expected, 1e-4);
}

TEST(SequenceModel, CopyYieldsIndependentTwin) {
  Rng rng(9);
  SequenceModel teacher(small_config(), rng);
  SequenceModel student = teacher;  // teacher → student copy

  const auto examples = cyclic_examples(8, 4, 16);
  std::vector<const SeqExample*> batch;
  for (const auto& ex : examples) batch.push_back(&ex);

  const auto before = teacher.score_log_likelihood(batch);
  Adam adam(1e-2f);
  adam.bind(student.params());
  for (int i = 0; i < 10; ++i) student.train_batch(batch, adam);
  const auto teacher_after = teacher.score_log_likelihood(batch);
  const auto student_after = student.score_log_likelihood(batch);

  // Teacher unchanged; student moved.
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], teacher_after[i]);
  }
  double diff = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    diff += std::abs(student_after[i] - before[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(SequenceModel, FreezeLowerLayersPinsBottomWeights) {
  Rng rng(11);
  SequenceModel model(small_config(), rng);
  model.freeze_lower_layers(1);

  const auto examples = cyclic_examples(8, 4, 16);
  std::vector<const SeqExample*> batch;
  for (const auto& ex : examples) batch.push_back(&ex);

  const std::vector<Param*> params = model.params();
  // params order: embedding, lstm0 (w,b), lstm1 (w,b), dense (w,b).
  std::vector<Matrix> before;
  for (Param* p : params) before.push_back(p->value);

  Adam adam(1e-2f);
  adam.bind(params);
  for (int i = 0; i < 5; ++i) model.train_batch(batch, adam);

  auto changed = [&](std::size_t i) {
    double diff = 0.0;
    for (std::size_t j = 0; j < before[i].size(); ++j) {
      diff += std::abs(before[i].data()[j] - params[i]->value.data()[j]);
    }
    return diff > 1e-6;
  };
  EXPECT_FALSE(changed(0));  // embedding frozen
  EXPECT_FALSE(changed(1));  // lstm0 weight frozen
  EXPECT_FALSE(changed(2));  // lstm0 bias frozen
  EXPECT_TRUE(changed(3));   // lstm1 trains
  EXPECT_TRUE(changed(5));   // dense trains

  model.freeze_lower_layers(0);
  for (Param* p : model.params()) EXPECT_FALSE(p->frozen);
}

TEST(SequenceModel, GrowVocabPreservesOldPredictions) {
  Rng rng(13);
  SequenceModel model(small_config(), rng);
  const auto examples = cyclic_examples(8, 4, 8);
  std::vector<const SeqExample*> batch;
  for (const auto& ex : examples) batch.push_back(&ex);
  const auto before = model.score_log_likelihood(batch);

  Rng grow_rng(99);
  model.grow_vocab(12, grow_rng);
  EXPECT_EQ(model.config().vocab, 12u);
  const auto after = model.score_log_likelihood(batch);
  // New logits shift the softmax denominator slightly but ordering-scale
  // changes must be small (new rows are near-random, low mass).
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1.0);
  }

  // New ids are now legal inputs/targets.
  SeqExample ex = examples[0];
  ex.target = 11;
  EXPECT_NO_THROW(model.score_log_likelihood({&ex}));
}

TEST(SequenceModel, GrowVocabCannotShrink) {
  Rng rng(13);
  SequenceModel model(small_config(), rng);
  Rng grow_rng(1);
  EXPECT_THROW(model.grow_vocab(4, grow_rng), nfv::util::CheckError);
}

TEST(SequenceModel, SaveLoadRoundTrip) {
  Rng rng(17);
  SequenceModel model(small_config(), rng);
  const auto examples = cyclic_examples(8, 4, 8);
  std::vector<const SeqExample*> batch;
  for (const auto& ex : examples) batch.push_back(&ex);
  Adam adam(1e-2f);
  adam.bind(model.params());
  for (int i = 0; i < 5; ++i) model.train_batch(batch, adam);

  std::stringstream stream;
  model.save(stream);
  SequenceModel loaded = SequenceModel::load(stream);
  EXPECT_EQ(loaded.config().vocab, model.config().vocab);
  EXPECT_EQ(loaded.config().window, model.config().window);

  const auto original = model.score_log_likelihood(batch);
  const auto restored = loaded.score_log_likelihood(batch);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(original[i], restored[i], 1e-6);
  }
}

TEST(SequenceModel, LoadRejectsGarbage) {
  std::stringstream stream;
  stream << "not a checkpoint";
  EXPECT_THROW(SequenceModel::load(stream), nfv::util::CheckError);
}

TEST(SequenceModel, RejectsBadWindows) {
  Rng rng(19);
  SequenceModel model(small_config(), rng);
  SeqExample bad;
  bad.ids = {0, 1};  // wrong window length
  bad.dts = {1.0f, 1.0f};
  bad.target = 0;
  EXPECT_THROW(model.score_log_likelihood({&bad}), nfv::util::CheckError);

  SeqExample out_of_vocab = cyclic_examples(8, 4, 1)[0];
  out_of_vocab.ids[0] = 99;
  EXPECT_THROW(model.score_log_likelihood({&out_of_vocab}),
               nfv::util::CheckError);
}

TEST(NormalizeDt, MonotoneAndBounded) {
  EXPECT_FLOAT_EQ(normalize_dt(0.0f), 0.0f);
  EXPECT_GT(normalize_dt(100.0f), normalize_dt(10.0f));
  EXPECT_LT(normalize_dt(7200.0f), 1.0f);
  EXPECT_FLOAT_EQ(normalize_dt(-5.0f), 0.0f);  // clamped
}

}  // namespace
}  // namespace nfv::ml
