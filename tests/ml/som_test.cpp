#include "ml/som.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/check.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

Matrix blobs(std::size_t per_blob, Rng& rng) {
  const double centers[3][2] = {{0.0, 0.0}, {8.0, 0.0}, {0.0, 8.0}};
  Matrix m(per_blob * 3, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      m.at(r, 0) = static_cast<float>(rng.normal(centers[b][0], 0.3));
      m.at(r, 1) = static_cast<float>(rng.normal(centers[b][1], 0.3));
    }
  }
  return m;
}

TEST(Som, SeparatesBlobsIntoDistinctUnits) {
  Rng rng(7);
  const Matrix data = blobs(25, rng);
  Som som;
  som.fit(data, rng);
  ASSERT_TRUE(som.trained());
  const auto labels = som.assign(data);
  // A blob may spread over a couple of adjacent units (topographic map),
  // but every unit must be *pure*: all its points from one blob.
  std::map<std::size_t, std::set<std::size_t>> blobs_per_unit;
  std::set<std::size_t> units_per_blob[3];
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < 25; ++i) {
      const std::size_t unit = labels[b * 25 + i];
      blobs_per_unit[unit].insert(b);
      units_per_blob[b].insert(unit);
    }
  }
  for (const auto& [unit, blobs] : blobs_per_unit) {
    EXPECT_EQ(blobs.size(), 1u) << "unit " << unit << " mixes blobs";
  }
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_LE(units_per_blob[b].size(), 3u) << "blob " << b << " scattered";
  }
}

TEST(Som, QuantizationErrorSmallOnTrainingData) {
  Rng rng(9);
  const Matrix data = blobs(20, rng);
  Som som;
  som.fit(data, rng);
  double total = 0.0;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    total += som.quantization_error(data.row_span(r));
  }
  EXPECT_LT(total / static_cast<double>(data.rows()), 1.0);
  // A far-away point has a much larger error.
  const float outlier[2] = {50.0f, -40.0f};
  EXPECT_GT(som.quantization_error(outlier), 10.0);
}

TEST(Som, CodebookAccessors) {
  Rng rng(11);
  const Matrix data = blobs(10, rng);
  SomConfig config;
  config.rows = 2;
  config.cols = 2;
  Som som(config);
  som.fit(data, rng);
  EXPECT_EQ(som.units(), 4u);
  EXPECT_EQ(som.codebook(0).size(), 2u);
  EXPECT_THROW(som.codebook(4), nfv::util::CheckError);
}

TEST(Som, RejectsInvalidInputs) {
  SomConfig empty_grid;
  empty_grid.rows = 0;
  EXPECT_THROW(Som{empty_grid}, nfv::util::CheckError);
  Rng rng(13);
  Som som;
  Matrix no_data;
  EXPECT_THROW(som.fit(no_data, rng), nfv::util::CheckError);
  const float x[2] = {0.0f, 0.0f};
  EXPECT_THROW(som.best_matching_unit(x), nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::ml
