#include "ml/matrix.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nfv::ml {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m.at(0, 1), 7.0f);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
}

TEST(Matrix, FillAndZero) {
  Matrix m(2, 2, 3.0f);
  m.fill(1.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 1.0f);
  m.zero();
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(Matrix, ResizeZeroesContents) {
  Matrix m(1, 1, 9.0f);
  m.resize(2, 2);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a(1, 3);
  Matrix b(1, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    a.at(0, i) = static_cast<float>(i + 1);
    b.at(0, i) = 2.0f;
  }
  a.add(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 3.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 4.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 8.0f);
  a.hadamard(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 16.0f);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(1, 2);
  Matrix b(2, 1);
  EXPECT_THROW(a.add(b), nfv::util::CheckError);
  EXPECT_THROW(a.hadamard(b), nfv::util::CheckError);
}

TEST(Matrix, SquaredNorm) {
  Matrix m(1, 2);
  m.at(0, 0) = 3.0f;
  m.at(0, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(m.squared_norm(), 25.0);
}

TEST(Matmul, KnownProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  Matrix out;
  matmul(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 19);
  EXPECT_FLOAT_EQ(out.at(0, 1), 22);
  EXPECT_FLOAT_EQ(out.at(1, 0), 43);
  EXPECT_FLOAT_EQ(out.at(1, 1), 50);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  Matrix out;
  EXPECT_THROW(matmul(a, b, out), nfv::util::CheckError);
}

TEST(MatmulTransB, MatchesExplicitTranspose) {
  Matrix a(2, 3);
  Matrix b(4, 3);  // b^T is 3x4
  float v = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = v += 0.5f;
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = v -= 0.25f;
  Matrix bt(3, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) bt.at(c, r) = b.at(r, c);
  }
  Matrix expected;
  matmul(a, bt, expected);
  Matrix got;
  matmul_transb(a, b, got);
  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-4f);
  }
}

TEST(MatmulTransAAccumulate, AccumulatesGradientShape) {
  Matrix a(3, 2);  // e.g. (batch x out)
  Matrix b(3, 4);  // (batch x in)
  a.fill(1.0f);
  b.fill(2.0f);
  Matrix out(2, 4);
  out.fill(1.0f);
  matmul_transa_accumulate(a, b, out);
  // out += a^T b, each element = 3 * 1 * 2 = 6, plus prior 1.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], 7.0f);
  }
}

TEST(AddRowVector, AddsToEveryRow) {
  Matrix m(2, 3, 1.0f);
  Matrix row(1, 3);
  row.at(0, 0) = 1;
  row.at(0, 1) = 2;
  row.at(0, 2) = 3;
  add_row_vector(m, row);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1, 2), 4.0f);
}

TEST(SumRowsAccumulate, ColumnSums) {
  Matrix m(3, 2);
  for (std::size_t r = 0; r < 3; ++r) {
    m.at(r, 0) = 1.0f;
    m.at(r, 1) = 2.0f;
  }
  Matrix out(1, 2);
  out.at(0, 0) = 10.0f;
  sum_rows_accumulate(m, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 13.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 6.0f);
}

}  // namespace
}  // namespace nfv::ml
