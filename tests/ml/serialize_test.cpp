#include "ml/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"

namespace nfv::ml {
namespace {

TEST(Serialize, U64RoundTrip) {
  std::stringstream stream;
  write_u64(stream, 0xdeadbeefcafef00dULL);
  write_u64(stream, 0);
  EXPECT_EQ(read_u64(stream), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(read_u64(stream), 0u);
}

TEST(Serialize, U64TruncatedStreamThrows) {
  std::stringstream stream;
  stream << "abc";
  EXPECT_THROW(read_u64(stream), nfv::util::CheckError);
}

TEST(Serialize, MatrixRoundTrip) {
  Matrix m(3, 4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(i) * 0.25f;
  }
  std::stringstream stream;
  write_matrix(stream, m);
  const Matrix restored = read_matrix(stream);
  ASSERT_EQ(restored.rows(), 3u);
  ASSERT_EQ(restored.cols(), 4u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(restored.data()[i], m.data()[i]);
  }
}

TEST(Serialize, MatrixBadMagicThrows) {
  std::stringstream stream;
  write_u64(stream, 12345);  // not kMatrixMagic
  write_u64(stream, 1);
  write_u64(stream, 1);
  EXPECT_THROW(read_matrix(stream), nfv::util::CheckError);
}

TEST(Serialize, MatrixTruncatedBodyThrows) {
  Matrix m(2, 2, 1.0f);
  std::stringstream stream;
  write_matrix(stream, m);
  std::string data = stream.str();
  data.resize(data.size() - 4);  // chop the last float
  std::stringstream truncated(data);
  EXPECT_THROW(read_matrix(truncated), nfv::util::CheckError);
}

TEST(Serialize, EmptyMatrixRoundTrip) {
  Matrix m(0, 5);
  std::stringstream stream;
  write_matrix(stream, m);
  const Matrix restored = read_matrix(stream);
  EXPECT_EQ(restored.rows(), 0u);
  EXPECT_EQ(restored.cols(), 5u);
}

}  // namespace
}  // namespace nfv::ml
