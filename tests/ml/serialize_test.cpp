#include "ml/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"

namespace nfv::ml {
namespace {

TEST(Serialize, U64RoundTrip) {
  std::stringstream stream;
  write_u64(stream, 0xdeadbeefcafef00dULL);
  write_u64(stream, 0);
  EXPECT_EQ(read_u64(stream), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(read_u64(stream), 0u);
}

TEST(Serialize, U64TruncatedStreamThrows) {
  std::stringstream stream;
  stream << "abc";
  EXPECT_THROW(read_u64(stream), nfv::util::CheckError);
}

TEST(Serialize, MatrixRoundTrip) {
  Matrix m(3, 4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(i) * 0.25f;
  }
  std::stringstream stream;
  write_matrix(stream, m);
  const Matrix restored = read_matrix(stream);
  ASSERT_EQ(restored.rows(), 3u);
  ASSERT_EQ(restored.cols(), 4u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(restored.data()[i], m.data()[i]);
  }
}

TEST(Serialize, MatrixBadMagicThrows) {
  std::stringstream stream;
  write_u64(stream, 12345);  // not kMatrixMagic
  write_u64(stream, 1);
  write_u64(stream, 1);
  EXPECT_THROW(read_matrix(stream), nfv::util::CheckError);
}

TEST(Serialize, MatrixTruncatedBodyThrows) {
  Matrix m(2, 2, 1.0f);
  std::stringstream stream;
  write_matrix(stream, m);
  std::string data = stream.str();
  data.resize(data.size() - 4);  // chop the last float
  std::stringstream truncated(data);
  EXPECT_THROW(read_matrix(truncated), nfv::util::CheckError);
}

TEST(Serialize, EmptyMatrixRoundTrip) {
  Matrix m(0, 5);
  std::stringstream stream;
  write_matrix(stream, m);
  const Matrix restored = read_matrix(stream);
  EXPECT_EQ(restored.rows(), 0u);
  EXPECT_EQ(restored.cols(), 5u);
}

/// A small packed image with tail channels (5 % 8 != 0) and a padded k
/// dimension (7 -> 8), so the round trip covers the panel layout's edge
/// cases, not just the dense interior.
QuantizedMatrix sample_quant_matrix() {
  Matrix m(5, 7);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(i % 11) * 0.3f - 1.2f;
  }
  QuantizedMatrix q;
  quantize_pack_b(m, q);
  return q;
}

TEST(Serialize, QuantMatrixRoundTripIsByteExact) {
  const QuantizedMatrix q = sample_quant_matrix();
  std::stringstream stream;
  write_quant_matrix(stream, q);
  const QuantizedMatrix restored = read_quant_matrix(stream);
  EXPECT_EQ(restored.rows, q.rows);
  EXPECT_EQ(restored.cols, q.cols);
  EXPECT_EQ(restored.cols_padded, q.cols_padded);
  // The calibration must survive exactly: codes, scales and column sums
  // are compared element-wise, not "close enough" — a loaded model scores
  // bit-identically to the one that was saved.
  EXPECT_EQ(restored.data, q.data);
  EXPECT_EQ(restored.col_sums, q.col_sums);
  ASSERT_EQ(restored.scales.size(), q.scales.size());
  for (std::size_t c = 0; c < q.scales.size(); ++c) {
    EXPECT_EQ(restored.scales[c], q.scales[c]) << "channel " << c;
  }
}

TEST(Serialize, QuantMatrixBadMagicThrows) {
  std::stringstream stream;
  write_u64(stream, kMatrixMagic);  // a valid magic, but the wrong one
  write_u64(stream, 1);
  write_u64(stream, 1);
  write_u64(stream, 4);
  EXPECT_THROW(read_quant_matrix(stream), nfv::util::CheckError);
}

TEST(Serialize, QuantMatrixTruncatedBodyThrows) {
  const QuantizedMatrix q = sample_quant_matrix();
  std::stringstream stream;
  write_quant_matrix(stream, q);
  std::string data = stream.str();
  data.resize(data.size() - 4);  // chop the last column sum
  std::stringstream truncated(data);
  EXPECT_THROW(read_quant_matrix(truncated), nfv::util::CheckError);
}

TEST(Serialize, QuantMatrixRejectsInconsistentShape) {
  // cols_padded smaller than cols (or not a multiple of 4) means the
  // panel image cannot be valid; the reader must refuse rather than
  // index out of bounds later.
  std::stringstream stream;
  write_u64(stream, kQuantMatrixMagic);
  write_u64(stream, 2);  // rows
  write_u64(stream, 8);  // cols
  write_u64(stream, 4);  // cols_padded < cols
  EXPECT_THROW(read_quant_matrix(stream), nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::ml
