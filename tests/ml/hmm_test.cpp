#include "ml/hmm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

/// Deterministic cyclic sequences over a vocab of 6: 0→1→2→0→...
std::vector<std::vector<std::int32_t>> cyclic_sequences(std::size_t count,
                                                        std::size_t length) {
  std::vector<std::vector<std::int32_t>> out;
  for (std::size_t s = 0; s < count; ++s) {
    std::vector<std::int32_t> sequence;
    for (std::size_t i = 0; i < length; ++i) {
      sequence.push_back(static_cast<std::int32_t>((s + i) % 3));
    }
    out.push_back(std::move(sequence));
  }
  return out;
}

TEST(Hmm, LearnsStructuredSequences) {
  Rng rng(1);
  HmmConfig config;
  config.states = 4;
  Hmm hmm(config);
  hmm.fit(cyclic_sequences(30, 24), 6, rng);
  ASSERT_TRUE(hmm.trained());

  // In-pattern sequences score low; scrambled/unused-symbol ones high.
  const std::vector<std::int32_t> normal{0, 1, 2, 0, 1, 2, 0, 1};
  const std::vector<std::int32_t> scrambled{2, 0, 0, 2, 1, 1, 0, 2};
  const std::vector<std::int32_t> foreign{4, 5, 4, 5, 4, 5, 4, 5};
  EXPECT_LT(hmm.anomaly_score(normal), hmm.anomaly_score(scrambled));
  EXPECT_LT(hmm.anomaly_score(scrambled), hmm.anomaly_score(foreign));
}

TEST(Hmm, UnknownSymbolsAreMaximallySurprising) {
  Rng rng(2);
  Hmm hmm;
  hmm.fit(cyclic_sequences(10, 12), 3, rng);
  const std::vector<std::int32_t> with_unknown{0, 1, 99};
  const std::vector<std::int32_t> without{0, 1, 2};
  EXPECT_GT(hmm.anomaly_score(with_unknown), hmm.anomaly_score(without));
}

TEST(Hmm, LogLikelihoodIsFiniteAndNegative) {
  Rng rng(3);
  Hmm hmm;
  hmm.fit(cyclic_sequences(10, 12), 3, rng);
  const double ll = hmm.log_likelihood({0, 1, 2, 0});
  EXPECT_TRUE(std::isfinite(ll));
  EXPECT_LT(ll, 0.0);
}

TEST(Hmm, TrainingImprovesLikelihood) {
  // More Baum-Welch iterations must not hurt the training likelihood.
  const auto sequences = cyclic_sequences(20, 16);
  HmmConfig one_iter;
  one_iter.max_iterations = 1;
  HmmConfig many_iter;
  many_iter.max_iterations = 25;
  Rng rng1(4);
  Rng rng2(4);
  Hmm a(one_iter);
  Hmm b(many_iter);
  a.fit(sequences, 3, rng1);
  b.fit(sequences, 3, rng2);
  double ll_a = 0.0;
  double ll_b = 0.0;
  for (const auto& sequence : sequences) {
    ll_a += a.log_likelihood(sequence);
    ll_b += b.log_likelihood(sequence);
  }
  EXPECT_GE(ll_b, ll_a - 1e-6);
}

TEST(Hmm, RejectsInvalidInputs) {
  Rng rng(5);
  Hmm hmm;
  EXPECT_THROW(hmm.fit({}, 3, rng), nfv::util::CheckError);
  EXPECT_THROW(hmm.fit({{}}, 3, rng), nfv::util::CheckError);
  EXPECT_THROW(hmm.fit(cyclic_sequences(2, 4), 0, rng),
               nfv::util::CheckError);
  EXPECT_THROW(hmm.log_likelihood({0}), nfv::util::CheckError);
  HmmConfig zero_states;
  zero_states.states = 0;
  EXPECT_THROW(Hmm{zero_states}, nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::ml
