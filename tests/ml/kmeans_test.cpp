#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

/// Three well-separated blobs in 2-D.
Matrix three_blobs(std::size_t per_blob, Rng& rng) {
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix m(per_blob * 3, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      m.at(r, 0) = static_cast<float>(rng.normal(centers[b][0], 0.4));
      m.at(r, 1) = static_cast<float>(rng.normal(centers[b][1], 0.4));
    }
  }
  return m;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(47);
  const Matrix data = three_blobs(30, rng);
  KMeansConfig config;
  config.k = 3;
  const KMeansResult result = kmeans(data, config, rng);
  ASSERT_EQ(result.labels.size(), 90u);
  // All points of a blob share a label, and blobs get distinct labels.
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t label = result.labels[b * 30];
    for (std::size_t i = 1; i < 30; ++i) {
      EXPECT_EQ(result.labels[b * 30 + i], label) << "blob " << b;
    }
  }
  EXPECT_NE(result.labels[0], result.labels[30]);
  EXPECT_NE(result.labels[30], result.labels[60]);
  EXPECT_NE(result.labels[0], result.labels[60]);
}

TEST(KMeans, InertiaDropsWithMoreClusters) {
  Rng rng(49);
  const Matrix data = three_blobs(20, rng);
  KMeansConfig k1;
  k1.k = 1;
  KMeansConfig k3;
  k3.k = 3;
  Rng r1(1);
  Rng r3(1);
  const double inertia1 = kmeans(data, k1, r1).inertia;
  const double inertia3 = kmeans(data, k3, r3).inertia;
  EXPECT_LT(inertia3, inertia1 * 0.1);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  Rng rng(51);
  Matrix data(4, 2);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(i);
  }
  KMeansConfig config;
  config.k = 4;
  const KMeansResult result = kmeans(data, config, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeans, RejectsInvalidK) {
  Rng rng(53);
  Matrix data(3, 2);
  KMeansConfig config;
  config.k = 5;
  EXPECT_THROW(kmeans(data, config, rng), nfv::util::CheckError);
  config.k = 0;
  EXPECT_THROW(kmeans(data, config, rng), nfv::util::CheckError);
}

TEST(Modularity, PerfectCommunitiesScoreHigh) {
  // Two cliques with no cross edges.
  Matrix graph(4, 4);
  graph.at(0, 1) = graph.at(1, 0) = 1.0f;
  graph.at(2, 3) = graph.at(3, 2) = 1.0f;
  const double good = modularity(graph, {0, 0, 1, 1});
  const double bad = modularity(graph, {0, 1, 0, 1});
  EXPECT_GT(good, 0.4);
  EXPECT_LT(bad, 0.0);
}

TEST(Modularity, EmptyGraphIsZero) {
  Matrix graph(3, 3);
  EXPECT_DOUBLE_EQ(modularity(graph, {0, 1, 2}), 0.0);
}

TEST(Modularity, RejectsBadShapes) {
  Matrix graph(2, 3);
  EXPECT_THROW(modularity(graph, {0, 1}), nfv::util::CheckError);
  Matrix square(2, 2);
  EXPECT_THROW(modularity(square, {0}), nfv::util::CheckError);
}

TEST(CosineSimilarityGraph, DiagonalZeroSymmetric) {
  Matrix data(3, 2);
  data.at(0, 0) = 1.0f;
  data.at(1, 0) = 1.0f;
  data.at(2, 1) = 1.0f;
  const Matrix graph = cosine_similarity_graph(data);
  EXPECT_FLOAT_EQ(graph.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(graph.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(graph.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(graph.at(0, 2), 0.0f);
}

TEST(CosineSimilarityGraph, ThresholdDropsWeakEdges) {
  Matrix data(2, 2);
  data.at(0, 0) = 1.0f;
  data.at(0, 1) = 0.1f;
  data.at(1, 0) = 0.1f;
  data.at(1, 1) = 1.0f;
  const Matrix graph = cosine_similarity_graph(data, 0.9);
  EXPECT_FLOAT_EQ(graph.at(0, 1), 0.0f);
}

TEST(SelectKByModularity, FindsThreeBlobs) {
  Rng rng(55);
  // Distribution-like rows: three groups with distinct dominant columns.
  Matrix data(12, 6);
  for (std::size_t r = 0; r < 12; ++r) {
    const std::size_t g = r / 4;
    for (std::size_t c = 0; c < 6; ++c) {
      data.at(r, c) = static_cast<float>(rng.uniform(0.0, 0.05));
    }
    data.at(r, 2 * g) = 0.6f + static_cast<float>(rng.uniform(0.0, 0.1));
    data.at(r, 2 * g + 1) = 0.3f;
  }
  const KSelection selection = select_k_by_modularity(data, 2, 6, rng);
  EXPECT_EQ(selection.best_k, 3u);
  EXPECT_EQ(selection.modularity_by_k.size(), 5u);
}

TEST(SelectKByModularity, RejectsBadRange) {
  Rng rng(57);
  Matrix data(3, 2, 1.0f);
  EXPECT_THROW(select_k_by_modularity(data, 2, 5, rng),
               nfv::util::CheckError);
  EXPECT_THROW(select_k_by_modularity(data, 3, 2, rng),
               nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::ml
