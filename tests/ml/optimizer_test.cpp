#include "ml/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace nfv::ml {
namespace {

Param make_param(float value, float grad) {
  Param p("p", 1, 1);
  p.value.at(0, 0) = value;
  p.grad.at(0, 0) = grad;
  return p;
}

TEST(Sgd, BasicStep) {
  Param p = make_param(1.0f, 0.5f);
  Sgd sgd(0.1f);
  sgd.bind({&p});
  sgd.step();
  EXPECT_FLOAT_EQ(p.value.at(0, 0), 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 0.0f);  // gradients zeroed
}

TEST(Sgd, MomentumAccumulates) {
  Param p = make_param(0.0f, 1.0f);
  Sgd sgd(1.0f, 0.9f);
  sgd.bind({&p});
  sgd.step();
  const float after_one = p.value.at(0, 0);
  EXPECT_FLOAT_EQ(after_one, -1.0f);
  p.grad.at(0, 0) = 1.0f;
  sgd.step();
  // velocity = 0.9*1 + 1 = 1.9
  EXPECT_FLOAT_EQ(p.value.at(0, 0), after_one - 1.9f);
}

TEST(Sgd, StepBeforeBindThrows) {
  Sgd sgd(0.1f);
  EXPECT_THROW(sgd.step(), nfv::util::CheckError);
}

TEST(Sgd, FrozenParamUntouched) {
  Param p = make_param(2.0f, 1.0f);
  p.frozen = true;
  Sgd sgd(0.5f);
  sgd.bind({&p});
  sgd.step();
  EXPECT_FLOAT_EQ(p.value.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 0.0f);  // grads still cleared
}

TEST(Adam, FirstStepMagnitudeIsLr) {
  // With bias correction, the first Adam step is ≈ lr * sign(grad).
  Param p = make_param(0.0f, 0.3f);
  Adam adam(0.01f);
  adam.bind({&p});
  adam.step();
  EXPECT_NEAR(p.value.at(0, 0), -0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2 by feeding grad = 2(x-3).
  Param p = make_param(0.0f, 0.0f);
  Adam adam(0.1f);
  adam.bind({&p});
  for (int i = 0; i < 500; ++i) {
    p.grad.at(0, 0) = 2.0f * (p.value.at(0, 0) - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(p.value.at(0, 0), 3.0f, 1e-2f);
}

TEST(Adam, FrozenParamUntouched) {
  Param p = make_param(1.0f, 5.0f);
  p.frozen = true;
  Adam adam(0.1f);
  adam.bind({&p});
  adam.step();
  EXPECT_FLOAT_EQ(p.value.at(0, 0), 1.0f);
}

TEST(Adam, RebindResetsState) {
  Param p = make_param(0.0f, 1.0f);
  Adam adam(0.01f);
  adam.bind({&p});
  adam.step();
  // After rebinding, moment estimates restart: step magnitude is again lr.
  adam.bind({&p});
  p.grad.at(0, 0) = -1.0f;
  const float before = p.value.at(0, 0);
  adam.step();
  EXPECT_NEAR(p.value.at(0, 0) - before, 0.01f, 1e-4f);
}

TEST(Adam, FrozenParamMomentsSurviveUnfreezeAndRebind) {
  // A parameter frozen from the start (transfer adaptation) must keep
  // zero moments while the step counter advances on the live parameters;
  // after unfreeze + rebind, its first step follows the closed form for
  // zero moments at the SHARED (advanced) step count — not a fresh
  // optimizer's t=1 step.
  const float lr = 0.1f, b1 = 0.9f, b2 = 0.999f, eps = 1e-8f;
  Param live = make_param(1.0f, 0.0f);
  Param cold = make_param(1.0f, 0.0f);
  Adam adam(lr, b1, b2, eps);
  adam.bind({&live, &cold});
  cold.frozen = true;
  constexpr int kWarmSteps = 3;
  for (int i = 0; i < kWarmSteps; ++i) {
    live.grad.at(0, 0) = 1.0f;
    cold.grad.at(0, 0) = 7.0f;  // must be zeroed, never applied
    adam.step();
    EXPECT_FLOAT_EQ(cold.value.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(cold.grad.at(0, 0), 0.0f);
  }

  cold.frozen = false;
  adam.rebind({&live, &cold});  // same shapes: moments and t survive
  const float g = 2.0f;
  live.grad.at(0, 0) = 1.0f;
  cold.grad.at(0, 0) = g;
  const float before = cold.value.at(0, 0);
  adam.step();  // shared step count is now kWarmSteps + 1
  const auto t = static_cast<float>(kWarmSteps + 1);
  const float bias1 = 1.0f - std::pow(b1, t);
  const float bias2 = 1.0f - std::pow(b2, t);
  const float m_hat = (1.0f - b1) * g / bias1;
  const float v_hat = (1.0f - b2) * g * g / bias2;
  const float expected = before - lr * m_hat / (std::sqrt(v_hat) + eps);
  EXPECT_NEAR(cold.value.at(0, 0), expected, 1e-6f);
  // Sanity: that differs measurably from a fresh optimizer's first step
  // (which would move by ~lr regardless of the gradient scale).
  EXPECT_GT(std::abs(std::abs(cold.value.at(0, 0) - before) - lr),
            1e-3f);
}

TEST(Adam, RebindMidTrajectoryMatchesUnrebound) {
  // rebind() on an unchanged parameter set must be a no-op for the
  // optimization trajectory: moments and step count carry over exactly.
  Param with_rebind = make_param(0.0f, 0.0f);
  Param reference = make_param(0.0f, 0.0f);
  Adam a(0.05f);
  Adam b(0.05f);
  a.bind({&with_rebind});
  b.bind({&reference});
  const auto grad_at = [](int i) {
    return 0.5f + 0.25f * static_cast<float>(i % 3);
  };
  for (int i = 0; i < 4; ++i) {
    with_rebind.grad.at(0, 0) = grad_at(i);
    reference.grad.at(0, 0) = grad_at(i);
    a.step();
    b.step();
  }
  a.rebind({&with_rebind});
  for (int i = 4; i < 8; ++i) {
    with_rebind.grad.at(0, 0) = grad_at(i);
    reference.grad.at(0, 0) = grad_at(i);
    a.step();
    b.step();
  }
  EXPECT_FLOAT_EQ(with_rebind.value.at(0, 0), reference.value.at(0, 0));
}

TEST(Optimizer, LearningRateAccessors) {
  Adam adam(0.02f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.02f);
  adam.set_learning_rate(0.005f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.005f);
}

TEST(ClipGradients, ScalesDownLargeNorm) {
  Param p = make_param(0.0f, 3.0f);
  Param q = make_param(0.0f, 4.0f);
  const double norm = clip_gradients({&p, &q}, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(p.grad.at(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(q.grad.at(0, 0), 0.8f, 1e-5f);
}

TEST(ClipGradients, LeavesSmallNorm) {
  Param p = make_param(0.0f, 0.3f);
  clip_gradients({&p}, 1.0);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 0.3f);
}

}  // namespace
}  // namespace nfv::ml
