// Finite-difference gradient checks for the manual-backprop layers. These
// are the load-bearing tests of the ML substrate: if backprop is right,
// training dynamics follow.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/dense.h"
#include "ml/loss.h"
#include "ml/lstm.h"
#include "ml/optimizer.h"
#include "ml/sequence_model.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

constexpr float kEps = 5e-3f;
constexpr double kRelTol = 3e-2;
constexpr double kAbsFloor = 2e-4;

void expect_close(double analytic, double numeric, const std::string& what,
                  double abs_floor = kAbsFloor, double rel_tol = kRelTol) {
  const double scale =
      std::max({std::abs(analytic), std::abs(numeric), abs_floor});
  EXPECT_LT(std::abs(analytic - numeric) / scale, rel_tol)
      << what << ": analytic=" << analytic << " numeric=" << numeric;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     float scale = 1.0f) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return m;
}

double weighted_sum(const Matrix& m, const Matrix& weights) {
  double sum = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    sum += static_cast<double>(m.data()[i]) * weights.data()[i];
  }
  return sum;
}

TEST(GradientCheck, DenseWeightsBiasAndInput) {
  Rng rng(7);
  Dense layer("d", 4, 5, Activation::kTanh, rng);
  const Matrix input = random_matrix(3, 4, rng);
  const Matrix loss_weights = random_matrix(3, 5, rng);

  // Analytic gradients.
  layer.forward(input);
  const Matrix& grad_input = layer.backward(loss_weights);

  auto loss_at = [&](const Matrix& x) {
    Dense& l = layer;
    // forward() caches; safe because we re-run forward before backward.
    return weighted_sum(l.forward(x), loss_weights);
  };

  // Input gradient.
  for (std::size_t i = 0; i < input.size(); ++i) {
    Matrix perturbed = input;
    perturbed.data()[i] += kEps;
    const double up = loss_at(perturbed);
    perturbed.data()[i] -= 2 * kEps;
    const double down = loss_at(perturbed);
    expect_close(grad_input.data()[i], (up - down) / (2 * kEps),
                 "dense input grad " + std::to_string(i));
  }

  // Weight and bias gradients (recompute analytic on the original input).
  layer.weight().zero_grad();
  layer.bias().zero_grad();
  layer.forward(input);
  layer.backward(loss_weights);
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float original = p->value.data()[i];
      p->value.data()[i] = original + kEps;
      const double up = loss_at(input);
      p->value.data()[i] = original - kEps;
      const double down = loss_at(input);
      p->value.data()[i] = original;
      expect_close(p->grad.data()[i], (up - down) / (2 * kEps),
                   p->name + " grad " + std::to_string(i));
    }
  }
}

TEST(GradientCheck, DenseReluAndSigmoid) {
  for (const Activation act : {Activation::kRelu, Activation::kSigmoid}) {
    Rng rng(11);
    Dense layer("d", 3, 3, act, rng);
    const Matrix input = random_matrix(2, 3, rng);
    const Matrix loss_weights = random_matrix(2, 3, rng);
    layer.forward(input);
    layer.backward(loss_weights);
    auto loss_at_weights = [&]() {
      return weighted_sum(layer.forward(input), loss_weights);
    };
    Param& w = layer.weight();
    for (std::size_t i = 0; i < w.value.size(); ++i) {
      const float original = w.value.data()[i];
      w.value.data()[i] = original + kEps;
      const double up = loss_at_weights();
      w.value.data()[i] = original - kEps;
      const double down = loss_at_weights();
      w.value.data()[i] = original;
      expect_close(w.grad.data()[i], (up - down) / (2 * kEps),
                   "act weight grad " + std::to_string(i));
    }
  }
}

TEST(GradientCheck, LstmFullBptt) {
  Rng rng(13);
  Lstm lstm("l", 3, 4, rng);
  const std::size_t steps = 3;
  const std::size_t batch = 2;
  std::vector<Matrix> inputs;
  std::vector<Matrix> loss_weights;
  for (std::size_t t = 0; t < steps; ++t) {
    inputs.push_back(random_matrix(batch, 3, rng));
    loss_weights.push_back(random_matrix(batch, 4, rng));
  }

  auto loss_now = [&]() {
    const std::vector<Matrix>& hs = lstm.forward(inputs);
    double sum = 0.0;
    for (std::size_t t = 0; t < steps; ++t) {
      sum += weighted_sum(hs[t], loss_weights[t]);
    }
    return sum;
  };

  loss_now();
  const std::vector<Matrix>& grad_inputs = lstm.backward(loss_weights);

  // Input gradients (all steps — exercises dh/dc carry across time).
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t i = 0; i < inputs[t].size(); ++i) {
      const float original = inputs[t].data()[i];
      inputs[t].data()[i] = original + kEps;
      const double up = loss_now();
      inputs[t].data()[i] = original - kEps;
      const double down = loss_now();
      inputs[t].data()[i] = original;
      expect_close(grad_inputs[t].data()[i], (up - down) / (2 * kEps),
                   "lstm input grad t" + std::to_string(t) + " i" +
                       std::to_string(i));
    }
  }

  // Weight/bias gradients.
  lstm.weight().zero_grad();
  lstm.bias().zero_grad();
  loss_now();
  lstm.backward(loss_weights);
  for (Param* p : lstm.params()) {
    // Sample a strided subset to keep the test fast.
    for (std::size_t i = 0; i < p->value.size(); i += 7) {
      const float original = p->value.data()[i];
      p->value.data()[i] = original + kEps;
      const double up = loss_now();
      p->value.data()[i] = original - kEps;
      const double down = loss_now();
      p->value.data()[i] = original;
      expect_close(p->grad.data()[i], (up - down) / (2 * kEps),
                   p->name + " grad " + std::to_string(i));
    }
  }
}

TEST(GradientCheck, SoftmaxCrossEntropyGradient) {
  Rng rng(17);
  const Matrix logits = random_matrix(3, 5, rng, 2.0f);
  const std::vector<std::int32_t> targets{1, 4, 0};
  Matrix grad;
  softmax_cross_entropy(logits, targets, grad);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix perturbed = logits;
    Matrix scratch;
    perturbed.data()[i] += kEps;
    const double up = softmax_cross_entropy(perturbed, targets, scratch);
    perturbed.data()[i] -= 2 * kEps;
    const double down = softmax_cross_entropy(perturbed, targets, scratch);
    expect_close(grad.data()[i], (up - down) / (2 * kEps),
                 "xent grad " + std::to_string(i));
  }
}

TEST(GradientCheck, MseGradient) {
  Rng rng(19);
  const Matrix pred = random_matrix(2, 3, rng);
  const Matrix target = random_matrix(2, 3, rng);
  Matrix grad;
  mse_loss(pred, target, grad);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    Matrix perturbed = pred;
    Matrix scratch;
    perturbed.data()[i] += kEps;
    const double up = mse_loss(perturbed, target, scratch);
    perturbed.data()[i] -= 2 * kEps;
    const double down = mse_loss(perturbed, target, scratch);
    expect_close(grad.data()[i], (up - down) / (2 * kEps),
                 "mse grad " + std::to_string(i));
  }
}

/// Optimizer that records gradients without touching the weights — lets us
/// extract analytic gradients from SequenceModel::train_batch.
class CaptureOptimizer final : public Optimizer {
 public:
  void bind(std::vector<Param*> params) override {
    params_ = std::move(params);
  }
  void step() override {
    captured_.clear();
    for (Param* p : params_) {
      captured_.push_back(p->grad);
      p->zero_grad();
    }
  }
  void set_learning_rate(float) override {}
  float learning_rate() const override { return 0.0f; }
  const std::vector<Matrix>& captured() const { return captured_; }

 private:
  std::vector<Param*> params_;
  std::vector<Matrix> captured_;
};

TEST(GradientCheck, SequenceModelEndToEnd) {
  Rng rng(23);
  SequenceModelConfig config;
  config.vocab = 6;
  config.embed_dim = 3;
  config.hidden = 4;
  config.layers = 2;
  config.window = 3;
  SequenceModel model(config, rng);

  std::vector<SeqExample> examples(2);
  examples[0].ids = {0, 2, 4};
  examples[0].dts = {10.0f, 30.0f, 5.0f};
  examples[0].target = 1;
  examples[1].ids = {5, 5, 3};
  examples[1].dts = {100.0f, 2.0f, 60.0f};
  examples[1].target = 0;
  std::vector<const SeqExample*> batch{&examples[0], &examples[1]};

  CaptureOptimizer capture;
  capture.bind(model.params());
  // Huge clip norm: gradients must reach the capture step unscaled.
  const double loss0 = model.train_batch(batch, capture, 1e9);
  EXPECT_GT(loss0, 0.0);
  const std::vector<Matrix> analytic = capture.captured();
  const std::vector<Param*> params = model.params();
  ASSERT_EQ(analytic.size(), params.size());

  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param* p = params[pi];
    for (std::size_t i = 0; i < p->value.size(); i += 11) {
      const float original = p->value.data()[i];
      p->value.data()[i] = original + kEps;
      const double up = model.train_batch(batch, capture, 1e9);
      p->value.data()[i] = original - kEps;
      const double down = model.train_batch(batch, capture, 1e9);
      p->value.data()[i] = original;
      // The full model runs ~8 chained float ops deep; finite-difference
      // noise on a float loss is ~2e-5, so tiny gradients need a larger
      // absolute floor than the single-layer checks.
      expect_close(analytic[pi].data()[i], (up - down) / (2 * kEps),
                   p->name + " grad " + std::to_string(i),
                   /*abs_floor=*/1e-3, /*rel_tol=*/0.08);
    }
  }
}

}  // namespace
}  // namespace nfv::ml
