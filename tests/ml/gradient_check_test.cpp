// Finite-difference gradient checks for the manual-backprop layers. These
// are the load-bearing tests of the ML substrate: if backprop is right,
// training dynamics follow.
//
// Two granularities share this file: per-layer checks (Dense, Lstm, the
// losses, one tiny end-to-end model) and the training-fast-path checks
// (suite GradCheckTrainingPath) that use batches wide enough to engage
// the packed backward kernels, the fused two-phase BPTT, and the
// destination-sharded embedding scatter — checked piecewise so a
// regression in one fused kernel names the layer (and gate) it broke.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ml/dense.h"
#include "ml/loss.h"
#include "ml/lstm.h"
#include "ml/optimizer.h"
#include "ml/sequence_model.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

constexpr float kEps = 5e-3f;
constexpr double kRelTol = 3e-2;
constexpr double kAbsFloor = 2e-4;

void expect_close(double analytic, double numeric, const std::string& what,
                  double abs_floor = kAbsFloor, double rel_tol = kRelTol) {
  const double scale =
      std::max({std::abs(analytic), std::abs(numeric), abs_floor});
  EXPECT_LT(std::abs(analytic - numeric) / scale, rel_tol)
      << what << ": analytic=" << analytic << " numeric=" << numeric;
}

/// Optimizer that records gradients without touching the weights — lets us
/// extract analytic gradients from SequenceModel::train_batch.
class CaptureOptimizer final : public Optimizer {
 public:
  void bind(std::vector<Param*> params) override {
    params_ = std::move(params);
  }
  void step() override {
    captured_.clear();
    for (Param* p : params_) {
      captured_.push_back(p->grad);
      p->zero_grad();
    }
  }
  void set_learning_rate(float) override {}
  float learning_rate() const override { return 0.0f; }
  const std::vector<Matrix>& captured() const { return captured_; }

 private:
  std::vector<Param*> params_;
  std::vector<Matrix> captured_;
};

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     float scale = 1.0f) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return m;
}

double weighted_sum(const Matrix& m, const Matrix& weights) {
  double sum = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    sum += static_cast<double>(m.data()[i]) * weights.data()[i];
  }
  return sum;
}

TEST(GradientCheck, DenseWeightsBiasAndInput) {
  Rng rng(7);
  Dense layer("d", 4, 5, Activation::kTanh, rng);
  const Matrix input = random_matrix(3, 4, rng);
  const Matrix loss_weights = random_matrix(3, 5, rng);

  // Analytic gradients.
  layer.forward(input);
  const Matrix& grad_input = layer.backward(loss_weights);

  auto loss_at = [&](const Matrix& x) {
    Dense& l = layer;
    // forward() caches; safe because we re-run forward before backward.
    return weighted_sum(l.forward(x), loss_weights);
  };

  // Input gradient.
  for (std::size_t i = 0; i < input.size(); ++i) {
    Matrix perturbed = input;
    perturbed.data()[i] += kEps;
    const double up = loss_at(perturbed);
    perturbed.data()[i] -= 2 * kEps;
    const double down = loss_at(perturbed);
    expect_close(grad_input.data()[i], (up - down) / (2 * kEps),
                 "dense input grad " + std::to_string(i));
  }

  // Weight and bias gradients (recompute analytic on the original input).
  layer.weight().zero_grad();
  layer.bias().zero_grad();
  layer.forward(input);
  layer.backward(loss_weights);
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float original = p->value.data()[i];
      p->value.data()[i] = original + kEps;
      const double up = loss_at(input);
      p->value.data()[i] = original - kEps;
      const double down = loss_at(input);
      p->value.data()[i] = original;
      expect_close(p->grad.data()[i], (up - down) / (2 * kEps),
                   p->name + " grad " + std::to_string(i));
    }
  }
}

TEST(GradientCheck, DenseReluAndSigmoid) {
  for (const Activation act : {Activation::kRelu, Activation::kSigmoid}) {
    Rng rng(11);
    Dense layer("d", 3, 3, act, rng);
    const Matrix input = random_matrix(2, 3, rng);
    const Matrix loss_weights = random_matrix(2, 3, rng);
    layer.forward(input);
    layer.backward(loss_weights);
    auto loss_at_weights = [&]() {
      return weighted_sum(layer.forward(input), loss_weights);
    };
    Param& w = layer.weight();
    for (std::size_t i = 0; i < w.value.size(); ++i) {
      const float original = w.value.data()[i];
      w.value.data()[i] = original + kEps;
      const double up = loss_at_weights();
      w.value.data()[i] = original - kEps;
      const double down = loss_at_weights();
      w.value.data()[i] = original;
      expect_close(w.grad.data()[i], (up - down) / (2 * kEps),
                   "act weight grad " + std::to_string(i));
    }
  }
}

TEST(GradientCheck, LstmFullBptt) {
  Rng rng(13);
  Lstm lstm("l", 3, 4, rng);
  const std::size_t steps = 3;
  const std::size_t batch = 2;
  std::vector<Matrix> inputs;
  std::vector<Matrix> loss_weights;
  for (std::size_t t = 0; t < steps; ++t) {
    inputs.push_back(random_matrix(batch, 3, rng));
    loss_weights.push_back(random_matrix(batch, 4, rng));
  }

  auto loss_now = [&]() {
    const std::vector<Matrix>& hs = lstm.forward(inputs);
    double sum = 0.0;
    for (std::size_t t = 0; t < steps; ++t) {
      sum += weighted_sum(hs[t], loss_weights[t]);
    }
    return sum;
  };

  loss_now();
  const std::vector<Matrix>& grad_inputs = lstm.backward(loss_weights);

  // Input gradients (all steps — exercises dh/dc carry across time).
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t i = 0; i < inputs[t].size(); ++i) {
      const float original = inputs[t].data()[i];
      inputs[t].data()[i] = original + kEps;
      const double up = loss_now();
      inputs[t].data()[i] = original - kEps;
      const double down = loss_now();
      inputs[t].data()[i] = original;
      expect_close(grad_inputs[t].data()[i], (up - down) / (2 * kEps),
                   "lstm input grad t" + std::to_string(t) + " i" +
                       std::to_string(i));
    }
  }

  // Weight/bias gradients.
  lstm.weight().zero_grad();
  lstm.bias().zero_grad();
  loss_now();
  lstm.backward(loss_weights);
  for (Param* p : lstm.params()) {
    // Sample a strided subset to keep the test fast.
    for (std::size_t i = 0; i < p->value.size(); i += 7) {
      const float original = p->value.data()[i];
      p->value.data()[i] = original + kEps;
      const double up = loss_now();
      p->value.data()[i] = original - kEps;
      const double down = loss_now();
      p->value.data()[i] = original;
      expect_close(p->grad.data()[i], (up - down) / (2 * kEps),
                   p->name + " grad " + std::to_string(i));
    }
  }
}

TEST(GradientCheck, SoftmaxCrossEntropyGradient) {
  Rng rng(17);
  const Matrix logits = random_matrix(3, 5, rng, 2.0f);
  const std::vector<std::int32_t> targets{1, 4, 0};
  Matrix grad;
  softmax_cross_entropy(logits, targets, grad);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix perturbed = logits;
    Matrix scratch;
    perturbed.data()[i] += kEps;
    const double up = softmax_cross_entropy(perturbed, targets, scratch);
    perturbed.data()[i] -= 2 * kEps;
    const double down = softmax_cross_entropy(perturbed, targets, scratch);
    expect_close(grad.data()[i], (up - down) / (2 * kEps),
                 "xent grad " + std::to_string(i));
  }
}

TEST(GradientCheck, MseGradient) {
  Rng rng(19);
  const Matrix pred = random_matrix(2, 3, rng);
  const Matrix target = random_matrix(2, 3, rng);
  Matrix grad;
  mse_loss(pred, target, grad);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    Matrix perturbed = pred;
    Matrix scratch;
    perturbed.data()[i] += kEps;
    const double up = mse_loss(perturbed, target, scratch);
    perturbed.data()[i] -= 2 * kEps;
    const double down = mse_loss(perturbed, target, scratch);
    expect_close(grad.data()[i], (up - down) / (2 * kEps),
                 "mse grad " + std::to_string(i));
  }
}

TEST(GradientCheck, SequenceModelEndToEnd) {
  Rng rng(23);
  SequenceModelConfig config;
  config.vocab = 6;
  config.embed_dim = 3;
  config.hidden = 4;
  config.layers = 2;
  config.window = 3;
  SequenceModel model(config, rng);

  std::vector<SeqExample> examples(2);
  examples[0].ids = {0, 2, 4};
  examples[0].dts = {10.0f, 30.0f, 5.0f};
  examples[0].target = 1;
  examples[1].ids = {5, 5, 3};
  examples[1].dts = {100.0f, 2.0f, 60.0f};
  examples[1].target = 0;
  std::vector<const SeqExample*> batch{&examples[0], &examples[1]};

  CaptureOptimizer capture;
  capture.bind(model.params());
  // Huge clip norm: gradients must reach the capture step unscaled.
  const double loss0 = model.train_batch(batch, capture, 1e9);
  EXPECT_GT(loss0, 0.0);
  const std::vector<Matrix> analytic = capture.captured();
  const std::vector<Param*> params = model.params();
  ASSERT_EQ(analytic.size(), params.size());

  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param* p = params[pi];
    for (std::size_t i = 0; i < p->value.size(); i += 11) {
      const float original = p->value.data()[i];
      p->value.data()[i] = original + kEps;
      const double up = model.train_batch(batch, capture, 1e9);
      p->value.data()[i] = original - kEps;
      const double down = model.train_batch(batch, capture, 1e9);
      p->value.data()[i] = original;
      // The full model runs ~8 chained float ops deep; finite-difference
      // noise on a float loss is ~2e-5, so tiny gradients need a larger
      // absolute floor than the single-layer checks.
      expect_close(analytic[pi].data()[i], (up - down) / (2 * kEps),
                   p->name + " grad " + std::to_string(i),
                   /*abs_floor=*/1e-3, /*rel_tol=*/0.08);
    }
  }
}

// ---------------------------------------------------------------------------
// Training fast path: batches wide enough for the packed backward kernels.
// The loss is a float-accumulated mean over 16 examples; central
// differences of it carry ~1e-5 absolute noise, so these checks use the
// wider floor/tolerance (1e-3 / 0.08) throughout.

/// Model + batch fixture: sizes chosen so the concat width (embed+1+hidden)
/// and the 4H gate axis are NOT multiples of 8 — the packed kernels' column
/// and k tails are inside the checked region, not just the panel bodies.
struct CheckRig {
  SequenceModelConfig config;
  Rng init_rng;
  SequenceModel model;
  std::vector<SeqExample> examples;
  std::vector<const SeqExample*> batch;
  CaptureOptimizer capture;
  std::vector<Param*> params;
  std::vector<Matrix> analytic;

  static SequenceModelConfig make_config() {
    SequenceModelConfig config;
    config.vocab = 9;
    config.embed_dim = 4;
    config.hidden = 5;
    config.layers = 2;
    config.window = 4;
    return config;
  }

  explicit CheckRig(std::uint64_t seed)
      : config(make_config()), init_rng(seed), model(config, init_rng) {
    Rng data_rng(seed + 1);
    // 16 examples: enough rows for the packed (≥ 8-row) batch kernels.
    examples.resize(16);
    for (std::size_t e = 0; e < examples.size(); ++e) {
      SeqExample& ex = examples[e];
      ex.ids.resize(config.window);
      ex.dts.resize(config.window);
      for (std::size_t t = 0; t < config.window; ++t) {
        ex.ids[t] = static_cast<std::int32_t>(
            data_rng.uniform_index(config.vocab));
        ex.dts[t] = static_cast<float>(data_rng.uniform(0.5, 300.0));
      }
      ex.target =
          static_cast<std::int32_t>(data_rng.uniform_index(config.vocab));
      batch.push_back(&ex);
    }
    capture.bind(model.params());
    params = model.params();
    // Huge clip norm: gradients must reach the capture step unscaled.
    model.train_batch(batch, capture, 1e9);
    analytic = capture.captured();
  }

  double loss() { return model.train_batch(batch, capture, 1e9); }

  /// Central-difference check of params[pi] elements [begin, end) with the
  /// given stride against the captured analytic gradients.
  void check_range(std::size_t pi, std::size_t begin, std::size_t end,
                   std::size_t stride, const std::string& what) {
    Param* p = params[pi];
    for (std::size_t i = begin; i < end; i += stride) {
      const float original = p->value.data()[i];
      p->value.data()[i] = original + kEps;
      const double up = loss();
      p->value.data()[i] = original - kEps;
      const double down = loss();
      p->value.data()[i] = original;
      expect_close(analytic[pi].data()[i], (up - down) / (2 * kEps),
                   what + " [" + std::to_string(i) + "]",
                   /*abs_floor=*/1e-3, /*rel_tol=*/0.08);
    }
  }
};

// params() order: embedding table, then per LSTM layer (weight, bias),
// then output dense (weight, bias).
constexpr std::size_t kEmbedIdx = 0;
constexpr std::size_t kLstm0WeightIdx = 1;
constexpr std::size_t kLstm0BiasIdx = 2;
constexpr std::size_t kLstm1WeightIdx = 3;
constexpr std::size_t kLstm1BiasIdx = 4;
constexpr std::size_t kOutWeightIdx = 5;
constexpr std::size_t kOutBiasIdx = 6;

TEST(GradCheckTrainingPath, EmbeddingTable) {
  CheckRig rig(31);
  // The sharded scatter accumulates per destination row; check every
  // element of every row so a row-bucketing bug cannot hide.
  rig.check_range(kEmbedIdx, 0, rig.params[kEmbedIdx]->value.size(), 1,
                  "embedding table grad");
}

TEST(GradCheckTrainingPath, LstmGateBlocksBothLayers) {
  CheckRig rig(37);
  const std::size_t h = rig.config.hidden;
  const char* gate_names[] = {"input", "forget", "cell", "output"};
  const struct {
    std::size_t weight_idx;
    std::size_t bias_idx;
    const char* layer;
  } layers[] = {{kLstm0WeightIdx, kLstm0BiasIdx, "lstm0"},
                {kLstm1WeightIdx, kLstm1BiasIdx, "lstm1"}};
  for (const auto& layer : layers) {
    const std::size_t w_cols = rig.params[layer.weight_idx]->value.cols();
    for (std::size_t gate = 0; gate < 4; ++gate) {
      // The weight rows [gate*H, (gate+1)*H) feed this gate's
      // pre-activations; a per-gate slice isolates the fused backward's
      // four derivative chains from one another.
      const std::size_t row_begin = gate * h * w_cols;
      const std::size_t row_end = (gate + 1) * h * w_cols;
      rig.check_range(layer.weight_idx, row_begin, row_end, 3,
                      std::string(layer.layer) + "." + gate_names[gate] +
                          " weight grad");
      rig.check_range(layer.bias_idx, gate * h, (gate + 1) * h, 1,
                      std::string(layer.layer) + "." + gate_names[gate] +
                          " bias grad");
    }
  }
}

TEST(GradCheckTrainingPath, OutputDenseHead) {
  CheckRig rig(41);
  rig.check_range(kOutWeightIdx, 0, rig.params[kOutWeightIdx]->value.size(),
                  2, "output weight grad");
  rig.check_range(kOutBiasIdx, 0, rig.params[kOutBiasIdx]->value.size(), 1,
                  "output bias grad");
}

TEST(GradCheckTrainingPath, AdamRebindPreservesMoments) {
  Rng rng(43);
  SequenceModelConfig config = CheckRig::make_config();
  SequenceModel model(config, rng);
  Adam adam(1e-2f);
  adam.bind(model.params());

  CheckRig rig(47);
  // A few real steps to build nonzero moment state.
  for (int i = 0; i < 3; ++i) model.train_batch(rig.batch, adam);
  const Matrix before = model.params()[kEmbedIdx]->value;

  // Moving the model relocates every Param; rebind must re-point the
  // optimizer without resetting the moments, and a grow_vocab reshape must
  // keep the surviving block.
  SequenceModel moved = std::move(model);
  Rng grow_rng(49);
  moved.grow_vocab(config.vocab + 3, grow_rng);
  adam.rebind(moved.params());
  const double loss = moved.train_batch(rig.batch, adam);
  EXPECT_TRUE(std::isfinite(loss));
  // The step actually updated the moved model's (grown) parameters.
  const Matrix& after = moved.params()[kEmbedIdx]->value;
  ASSERT_EQ(after.rows(), before.rows() + 3);
  bool changed = false;
  for (std::size_t r = 0; r < before.rows() && !changed; ++r) {
    for (std::size_t c = 0; c < before.cols() && !changed; ++c) {
      changed = after.at(r, c) != before.at(r, c);
    }
  }
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace nfv::ml
