// Bitwise determinism of the training fast path: per-batch losses and
// final parameters must be identical for any NFVPRED_THREADS, both with
// the AVX2+FMA kernels enabled and with them forced off. (The two SIMD
// modes may differ from each other — that is the same per-machine contract
// the scoring kernels ship with — but each mode must be internally
// invariant to the thread count.)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "ml/matrix.h"
#include "ml/optimizer.h"
#include "ml/sequence_model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

struct TrainRun {
  std::vector<std::uint64_t> loss_bits;  // one per batch, in order
  std::vector<float> final_params;       // all tensors, flattened in order
};

std::vector<SeqExample> make_dataset(const SequenceModelConfig& config,
                                     std::size_t count) {
  Rng rng(99);
  std::vector<SeqExample> examples(count);
  for (SeqExample& ex : examples) {
    ex.ids.resize(config.window);
    ex.dts.resize(config.window);
    for (std::size_t t = 0; t < config.window; ++t) {
      ex.ids[t] = static_cast<std::int32_t>(rng.uniform_index(config.vocab));
      ex.dts[t] = static_cast<float>(rng.uniform(0.5, 600.0));
    }
    ex.target = static_cast<std::int32_t>(rng.uniform_index(config.vocab));
  }
  return examples;
}

TrainRun run_training(std::size_t threads, bool simd) {
  nfv::util::set_global_threads(threads);
  set_simd_kernels_enabled(simd);

  SequenceModelConfig config;
  config.vocab = 40;
  config.embed_dim = 16;
  config.hidden = 32;
  config.layers = 2;
  config.window = 10;
  Rng init_rng(5);
  SequenceModel model(config, init_rng);
  Adam adam(3e-3f);
  adam.bind(model.params());

  // Batch of 64 rows: wide enough for the packed kernels AND the
  // row-parallel elementwise splits, so every parallel code path is live.
  const std::vector<SeqExample> examples = make_dataset(config, 192);
  constexpr std::size_t kBatch = 64;
  TrainRun run;
  for (std::size_t epoch = 0; epoch < 2; ++epoch) {
    for (std::size_t start = 0; start < examples.size(); start += kBatch) {
      std::vector<const SeqExample*> batch;
      for (std::size_t i = start;
           i < std::min(start + kBatch, examples.size()); ++i) {
        batch.push_back(&examples[i]);
      }
      const double loss = model.train_batch(batch, adam);
      std::uint64_t bits = 0;
      std::memcpy(&bits, &loss, sizeof(bits));
      run.loss_bits.push_back(bits);
    }
  }
  for (Param* p : model.params()) {
    const float* data = p->value.data();
    run.final_params.insert(run.final_params.end(), data,
                            data + p->value.size());
  }
  return run;
}

void expect_bitwise_equal(const TrainRun& a, const TrainRun& b,
                          const std::string& what) {
  ASSERT_EQ(a.loss_bits.size(), b.loss_bits.size()) << what;
  for (std::size_t i = 0; i < a.loss_bits.size(); ++i) {
    EXPECT_EQ(a.loss_bits[i], b.loss_bits[i]) << what << ": loss " << i;
  }
  ASSERT_EQ(a.final_params.size(), b.final_params.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.final_params.data(), b.final_params.data(),
                           a.final_params.size() * sizeof(float)))
      << what << ": final parameters differ";
}

class TrainingDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { simd_default_ = simd_kernels_enabled(); }
  void TearDown() override {
    set_simd_kernels_enabled(simd_default_);
    nfv::util::set_global_threads(0);
  }
  bool simd_default_ = false;
};

TEST_F(TrainingDeterminismTest, ThreadCountInvariantWithSimd) {
  if (!simd_default_) GTEST_SKIP() << "AVX2+FMA unavailable or disabled";
  const TrainRun one = run_training(1, true);
  const TrainRun four = run_training(4, true);
  expect_bitwise_equal(one, four, "simd 1T vs 4T");
}

TEST_F(TrainingDeterminismTest, ThreadCountInvariantWithSimdOff) {
  const TrainRun one = run_training(1, false);
  const TrainRun four = run_training(4, false);
  expect_bitwise_equal(one, four, "baseline 1T vs 4T");
}

TEST_F(TrainingDeterminismTest, RepeatRunsBitIdentical) {
  const TrainRun a = run_training(4, simd_default_);
  const TrainRun b = run_training(4, simd_default_);
  expect_bitwise_equal(a, b, "repeat 4T");
}

}  // namespace
}  // namespace nfv::ml
