#include "ml/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

/// Data concentrated along the (1, 1, 0) direction in R^3 plus small noise.
Matrix line_data(std::size_t rows, Rng& rng) {
  Matrix m(rows, 3);
  for (std::size_t r = 0; r < rows; ++r) {
    const double t = rng.uniform(-2.0, 2.0);
    m.at(r, 0) = static_cast<float>(t + rng.normal(0.0, 0.05));
    m.at(r, 1) = static_cast<float>(t + rng.normal(0.0, 0.05));
    m.at(r, 2) = static_cast<float>(rng.normal(0.0, 0.05));
  }
  return m;
}

TEST(Pca, FindsDominantDirection) {
  Rng rng(61);
  PcaConfig config;
  config.components = 1;
  Pca pca(config);
  pca.fit(line_data(300, rng), rng);
  ASSERT_TRUE(pca.trained());
  const Matrix& comps = pca.components();
  ASSERT_EQ(comps.rows(), 1u);
  // Dominant direction ≈ ±(1,1,0)/√2.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  const double c0 = comps.at(0, 0);
  const double c1 = comps.at(0, 1);
  const double c2 = comps.at(0, 2);
  EXPECT_NEAR(std::abs(c0), inv_sqrt2, 0.05);
  EXPECT_NEAR(std::abs(c1), inv_sqrt2, 0.05);
  EXPECT_NEAR(std::abs(c2), 0.0, 0.1);
  EXPECT_GT(c0 * c1, 0.0);  // same sign
}

TEST(Pca, ComponentsAreOrthonormal) {
  Rng rng(63);
  PcaConfig config;
  config.components = 3;
  Pca pca(config);
  Matrix data(100, 4);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  pca.fit(data, rng);
  const Matrix& comps = pca.components();
  for (std::size_t a = 0; a < comps.rows(); ++a) {
    for (std::size_t b = a; b < comps.rows(); ++b) {
      double dot = 0.0;
      for (std::size_t c = 0; c < comps.cols(); ++c) {
        dot += static_cast<double>(comps.at(a, c)) * comps.at(b, c);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 0.05);
    }
  }
}

TEST(Pca, ExplainedVarianceDescending) {
  Rng rng(65);
  PcaConfig config;
  config.components = 2;
  Pca pca(config);
  pca.fit(line_data(300, rng), rng);
  const auto& variance = pca.explained_variance();
  ASSERT_EQ(variance.size(), 2u);
  EXPECT_GT(variance[0], variance[1]);
}

TEST(Pca, OnLineLowResidualOffLineHigh) {
  Rng rng(67);
  PcaConfig config;
  config.components = 1;
  Pca pca(config);
  pca.fit(line_data(300, rng), rng);
  const float on_line[3] = {1.0f, 1.0f, 0.0f};
  const float off_line[3] = {1.0f, -1.0f, 2.0f};
  EXPECT_LT(pca.residual_energy(on_line), 0.05);
  EXPECT_GT(pca.residual_energy(off_line), 1.0);
}

TEST(Pca, ProjectionLength) {
  Rng rng(69);
  PcaConfig config;
  config.components = 2;
  Pca pca(config);
  pca.fit(line_data(100, rng), rng);
  const float x[3] = {0.5f, 0.5f, 0.1f};
  EXPECT_EQ(pca.project(x).size(), 2u);
}

TEST(Pca, ComponentsClampedToDim) {
  Rng rng(71);
  PcaConfig config;
  config.components = 10;
  Pca pca(config);
  pca.fit(line_data(50, rng), rng);
  EXPECT_EQ(pca.component_count(), 3u);
}

TEST(Pca, RejectsDegenerateInputs) {
  Rng rng(73);
  Pca pca;
  Matrix one_row(1, 3);
  EXPECT_THROW(pca.fit(one_row, rng), nfv::util::CheckError);
  const float x[3] = {0, 0, 0};
  EXPECT_THROW(pca.residual_energy(x), nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::ml
