// Central finite-difference gradient checks aimed at the training fast
// path: batches wide enough to engage the packed backward kernels, the
// fused two-phase BPTT, and the destination-sharded embedding scatter.
// Components are checked piecewise — the embedding table, every gate
// block of every LSTM layer, and the output dense head — so a regression
// in one fused kernel names the layer (and gate) it broke.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ml/optimizer.h"
#include "ml/sequence_model.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

constexpr float kEps = 5e-3f;

// The loss is a float-accumulated mean over the batch; central differences
// of it carry ~1e-5 absolute noise, so gradients near zero are checked
// against an absolute floor and everything else to a few percent.
void expect_close(double analytic, double numeric, const std::string& what) {
  const double scale = std::max({std::abs(analytic), std::abs(numeric), 1e-3});
  EXPECT_LT(std::abs(analytic - numeric) / scale, 0.08)
      << what << ": analytic=" << analytic << " numeric=" << numeric;
}

/// Records gradients without updating weights, so train_batch doubles as
/// forward_backward for the checks below.
class CaptureOptimizer final : public Optimizer {
 public:
  void bind(std::vector<Param*> params) override {
    params_ = std::move(params);
  }
  void step() override {
    captured_.clear();
    for (Param* p : params_) {
      captured_.push_back(p->grad);
      p->zero_grad();
    }
  }
  void set_learning_rate(float) override {}
  float learning_rate() const override { return 0.0f; }
  const std::vector<Matrix>& captured() const { return captured_; }

 private:
  std::vector<Param*> params_;
  std::vector<Matrix> captured_;
};

/// Model + batch fixture: sizes chosen so the concat width (embed+1+hidden)
/// and the 4H gate axis are NOT multiples of 8 — the packed kernels' column
/// and k tails are inside the checked region, not just the panel bodies.
struct CheckRig {
  SequenceModelConfig config;
  Rng init_rng;
  SequenceModel model;
  std::vector<SeqExample> examples;
  std::vector<const SeqExample*> batch;
  CaptureOptimizer capture;
  std::vector<Param*> params;
  std::vector<Matrix> analytic;

  static SequenceModelConfig make_config() {
    SequenceModelConfig config;
    config.vocab = 9;
    config.embed_dim = 4;
    config.hidden = 5;
    config.layers = 2;
    config.window = 4;
    return config;
  }

  explicit CheckRig(std::uint64_t seed)
      : config(make_config()), init_rng(seed), model(config, init_rng) {
    Rng data_rng(seed + 1);
    // 16 examples: enough rows for the packed (≥ 8-row) batch kernels.
    examples.resize(16);
    for (std::size_t e = 0; e < examples.size(); ++e) {
      SeqExample& ex = examples[e];
      ex.ids.resize(config.window);
      ex.dts.resize(config.window);
      for (std::size_t t = 0; t < config.window; ++t) {
        ex.ids[t] = static_cast<std::int32_t>(
            data_rng.uniform_index(config.vocab));
        ex.dts[t] = static_cast<float>(data_rng.uniform(0.5, 300.0));
      }
      ex.target =
          static_cast<std::int32_t>(data_rng.uniform_index(config.vocab));
      batch.push_back(&ex);
    }
    capture.bind(model.params());
    params = model.params();
    // Huge clip norm: gradients must reach the capture step unscaled.
    model.train_batch(batch, capture, 1e9);
    analytic = capture.captured();
  }

  double loss() { return model.train_batch(batch, capture, 1e9); }

  /// Central-difference check of params[pi] elements [begin, end) with the
  /// given stride against the captured analytic gradients.
  void check_range(std::size_t pi, std::size_t begin, std::size_t end,
                   std::size_t stride, const std::string& what) {
    Param* p = params[pi];
    for (std::size_t i = begin; i < end; i += stride) {
      const float original = p->value.data()[i];
      p->value.data()[i] = original + kEps;
      const double up = loss();
      p->value.data()[i] = original - kEps;
      const double down = loss();
      p->value.data()[i] = original;
      expect_close(analytic[pi].data()[i], (up - down) / (2 * kEps),
                   what + " [" + std::to_string(i) + "]");
    }
  }
};

// params() order: embedding table, then per LSTM layer (weight, bias),
// then output dense (weight, bias).
constexpr std::size_t kEmbedIdx = 0;
constexpr std::size_t kLstm0WeightIdx = 1;
constexpr std::size_t kLstm0BiasIdx = 2;
constexpr std::size_t kLstm1WeightIdx = 3;
constexpr std::size_t kLstm1BiasIdx = 4;
constexpr std::size_t kOutWeightIdx = 5;
constexpr std::size_t kOutBiasIdx = 6;

TEST(GradCheckTrainingPath, EmbeddingTable) {
  CheckRig rig(31);
  // The sharded scatter accumulates per destination row; check every
  // element of every row so a row-bucketing bug cannot hide.
  rig.check_range(kEmbedIdx, 0, rig.params[kEmbedIdx]->value.size(), 1,
                  "embedding table grad");
}

TEST(GradCheckTrainingPath, LstmGateBlocksBothLayers) {
  CheckRig rig(37);
  const std::size_t h = rig.config.hidden;
  const char* gate_names[] = {"input", "forget", "cell", "output"};
  const struct {
    std::size_t weight_idx;
    std::size_t bias_idx;
    const char* layer;
  } layers[] = {{kLstm0WeightIdx, kLstm0BiasIdx, "lstm0"},
                {kLstm1WeightIdx, kLstm1BiasIdx, "lstm1"}};
  for (const auto& layer : layers) {
    const std::size_t w_cols = rig.params[layer.weight_idx]->value.cols();
    for (std::size_t gate = 0; gate < 4; ++gate) {
      // The weight rows [gate*H, (gate+1)*H) feed this gate's
      // pre-activations; a per-gate slice isolates the fused backward's
      // four derivative chains from one another.
      const std::size_t row_begin = gate * h * w_cols;
      const std::size_t row_end = (gate + 1) * h * w_cols;
      rig.check_range(layer.weight_idx, row_begin, row_end, 3,
                      std::string(layer.layer) + "." + gate_names[gate] +
                          " weight grad");
      rig.check_range(layer.bias_idx, gate * h, (gate + 1) * h, 1,
                      std::string(layer.layer) + "." + gate_names[gate] +
                          " bias grad");
    }
  }
}

TEST(GradCheckTrainingPath, OutputDenseHead) {
  CheckRig rig(41);
  rig.check_range(kOutWeightIdx, 0, rig.params[kOutWeightIdx]->value.size(),
                  2, "output weight grad");
  rig.check_range(kOutBiasIdx, 0, rig.params[kOutBiasIdx]->value.size(), 1,
                  "output bias grad");
}

TEST(GradCheckTrainingPath, AdamRebindPreservesMoments) {
  Rng rng(43);
  SequenceModelConfig config = CheckRig::make_config();
  SequenceModel model(config, rng);
  Adam adam(1e-2f);
  adam.bind(model.params());

  CheckRig rig(47);
  // A few real steps to build nonzero moment state.
  for (int i = 0; i < 3; ++i) model.train_batch(rig.batch, adam);
  const Matrix before = model.params()[kEmbedIdx]->value;

  // Moving the model relocates every Param; rebind must re-point the
  // optimizer without resetting the moments, and a grow_vocab reshape must
  // keep the surviving block.
  SequenceModel moved = std::move(model);
  Rng grow_rng(49);
  moved.grow_vocab(config.vocab + 3, grow_rng);
  adam.rebind(moved.params());
  const double loss = moved.train_batch(rig.batch, adam);
  EXPECT_TRUE(std::isfinite(loss));
  // The step actually updated the moved model's (grown) parameters.
  const Matrix& after = moved.params()[kEmbedIdx]->value;
  ASSERT_EQ(after.rows(), before.rows() + 3);
  bool changed = false;
  for (std::size_t r = 0; r < before.rows() && !changed; ++r) {
    for (std::size_t c = 0; c < before.cols() && !changed; ++c) {
      changed = after.at(r, c) != before.at(r, c);
    }
  }
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace nfv::ml
