#include "ml/ocsvm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

/// Gaussian blob around (2, 2).
Matrix blob(std::size_t rows, Rng& rng) {
  Matrix m(rows, 2);
  for (std::size_t r = 0; r < rows; ++r) {
    m.at(r, 0) = static_cast<float>(rng.normal(2.0, 0.3));
    m.at(r, 1) = static_cast<float>(rng.normal(2.0, 0.3));
  }
  return m;
}

TEST(OcSvm, SeparatesBlobFromOutliers) {
  Rng rng(33);
  OcSvmConfig config;
  config.nu = 0.1;
  OcSvm svm(config);
  svm.fit(blob(300, rng));
  ASSERT_TRUE(svm.trained());

  // Points near the blob center: positive decision value (normal).
  const float inside[2] = {2.0f, 2.0f};
  EXPECT_GT(svm.decision_value(inside), 0.0);

  // Far outliers: negative decision value (anomalous).
  const float outside[2] = {6.0f, -3.0f};
  EXPECT_LT(svm.decision_value(outside), 0.0);
  EXPECT_GT(svm.anomaly_score(outside), svm.anomaly_score(inside));
}

TEST(OcSvm, NuBoundsTrainingOutlierFraction) {
  Rng rng(35);
  OcSvmConfig config;
  config.nu = 0.2;
  OcSvm svm(config);
  const Matrix train = blob(200, rng);
  svm.fit(train);
  std::size_t outliers = 0;
  for (std::size_t r = 0; r < train.rows(); ++r) {
    if (svm.decision_value(train.row_span(r)) < 0.0) ++outliers;
  }
  // ν is an upper bound on the training outlier fraction (plus slack for
  // the approximate solver).
  EXPECT_LE(static_cast<double>(outliers) / 200.0, 0.2 + 0.08);
}

TEST(OcSvm, SupportVectorsAreSubset) {
  Rng rng(37);
  OcSvmConfig config;
  config.nu = 0.1;
  OcSvm svm(config);
  svm.fit(blob(150, rng));
  EXPECT_GT(svm.support_vector_count(), 0u);
  EXPECT_LT(svm.support_vector_count(), 150u);
}

TEST(OcSvm, SubsamplesHugeTrainingSets) {
  Rng rng(39);
  OcSvmConfig config;
  config.max_training_rows = 100;
  OcSvm svm(config);
  svm.fit(blob(500, rng));
  EXPECT_LE(svm.support_vector_count(), 100u);
  const float inside[2] = {2.0f, 2.0f};
  EXPECT_GT(svm.decision_value(inside), 0.0);
}

TEST(OcSvm, ExplicitGammaRespected) {
  Rng rng(41);
  OcSvmConfig config;
  config.gamma = 2.5;
  OcSvm svm(config);
  svm.fit(blob(50, rng));
  EXPECT_DOUBLE_EQ(svm.gamma(), 2.5);
}

TEST(OcSvm, DefaultGammaScalesWithVariance) {
  Rng rng(43);
  OcSvm svm;
  svm.fit(blob(100, rng));
  EXPECT_GT(svm.gamma(), 0.0);
}

TEST(OcSvm, AnomalyScoresBatch) {
  Rng rng(45);
  OcSvm svm;
  svm.fit(blob(100, rng));
  const Matrix test = blob(10, rng);
  const auto scores = svm.anomaly_scores(test);
  ASSERT_EQ(scores.size(), 10u);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_DOUBLE_EQ(scores[r], -svm.decision_value(test.row_span(r)));
  }
}

TEST(OcSvm, RejectsInvalidInputs) {
  OcSvmConfig bad_nu;
  bad_nu.nu = 0.0;
  EXPECT_THROW(OcSvm{bad_nu}, nfv::util::CheckError);

  OcSvm svm;
  Matrix empty;
  EXPECT_THROW(svm.fit(empty), nfv::util::CheckError);
  const float x[2] = {0.0f, 0.0f};
  EXPECT_THROW(svm.decision_value(x), nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::ml
