// Kernel- and model-level tests of the int8 quantized scoring tier.
//
// The contracts under test, in order of load-bearingness:
//   1. matmul_quant is bit-identical across SIMD tiers (AVX2 vs serial
//      reference), thread counts, and row partitionings — quantized
//      scores may differ from fp32, but never from each other.
//   2. Degenerate weight channels (all-zero rows, constant rows) quantize
//      without division by zero or saturation artifacts.
//   3. The quantized product tracks the fp32 product to within the error
//      budget of 7-bit activations × 8-bit weights.
//   4. The SequenceModel sidecar follows the fp32 weights' lifecycle:
//      installed by quantize(), dropped by train_batch/grow_vocab.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "ml/matrix.h"
#include "ml/optimizer.h"
#include "ml/sequence_model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nfv::ml {
namespace {

using nfv::util::Rng;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     float scale = 1.0f) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return m;
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Toggles the SIMD kernel tier for one scope; restores on destruction.
class SimdGuard {
 public:
  explicit SimdGuard(bool enabled) : was_(simd_kernels_enabled()) {
    set_simd_kernels_enabled(enabled);
  }
  ~SimdGuard() { set_simd_kernels_enabled(was_); }

 private:
  bool was_;
};

TEST(QuantizePackB, PanelLayoutScalesAndColumnSums) {
  Rng rng(3);
  const std::size_t cn = 13, kn = 7;  // tail channels AND a padded k
  const Matrix b = random_matrix(cn, kn, rng);
  QuantizedMatrix qb;
  quantize_pack_b(b, qb);

  EXPECT_EQ(qb.rows, cn);
  EXPECT_EQ(qb.cols, kn);
  EXPECT_EQ(qb.cols_padded, 8u);  // next multiple of 4
  EXPECT_EQ(qb.data.size(), cn * qb.cols_padded);
  EXPECT_EQ(qb.scales.size(), cn);
  EXPECT_EQ(qb.col_sums.size(), cn);

  for (std::size_t c = 0; c < cn; ++c) {
    float amax = 0.0f;
    for (std::size_t k = 0; k < kn; ++k) {
      amax = std::max(amax, std::abs(b.at(c, k)));
    }
    EXPECT_FLOAT_EQ(qb.scales[c], amax / 127.0f);
    // Codes must reconstruct each weight to within half a step, and the
    // stored column sum must be exactly the sum of the codes. Walk the
    // panel layout directly: full panels of 8 channels, 4-k groups, then
    // row-major tail channels.
    const std::size_t panels = cn / 8;
    std::int32_t sum = 0;
    for (std::size_t k = 0; k < qb.cols_padded; ++k) {
      std::int8_t code;
      if (c < panels * 8) {
        const std::size_t p = c / 8, jj = c % 8, g = k / 4;
        code = qb.data[p * qb.cols_padded * 8 + g * 32 + jj * 4 + (k % 4)];
      } else {
        code = qb.data[panels * qb.cols_padded * 8 +
                       (c - panels * 8) * qb.cols_padded + k];
      }
      sum += code;
      const float reconstructed = static_cast<float>(code) * qb.scales[c];
      const float original = k < kn ? b.at(c, k) : 0.0f;
      EXPECT_NEAR(reconstructed, original, qb.scales[c] * 0.5f + 1e-7f)
          << "channel " << c << " k " << k;
    }
    EXPECT_EQ(qb.col_sums[c], sum) << "channel " << c;
  }
}

TEST(QuantizePackB, AllZeroChannelHasUnitScaleAndZeroCodes) {
  Matrix b(3, 5, 0.0f);
  b.at(1, 2) = 0.75f;  // middle channel non-zero; rows 0 and 2 all-zero
  QuantizedMatrix qb;
  quantize_pack_b(b, qb);
  EXPECT_FLOAT_EQ(qb.scales[0], 1.0f);  // no division by zero
  EXPECT_FLOAT_EQ(qb.scales[2], 1.0f);
  EXPECT_EQ(qb.col_sums[0], 0);
  EXPECT_EQ(qb.col_sums[2], 0);

  // The product against any activation must be exactly zero for the
  // all-zero channels on every tier.
  Rng rng(5);
  const Matrix a = random_matrix(6, 5, rng, 3.0f);
  Matrix out;
  matmul_quant(a, qb, out);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    EXPECT_EQ(out.at(i, 0), 0.0f);
    EXPECT_EQ(out.at(i, 2), 0.0f);
  }
}

TEST(QuantizePackB, ConstantChannelSaturatesToFullScaleWithoutOverflow) {
  Matrix b(1, 4, -2.5f);  // every weight at the (negative) extreme
  QuantizedMatrix qb;
  quantize_pack_b(b, qb);
  EXPECT_FLOAT_EQ(qb.scales[0], 2.5f / 127.0f);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(qb.data[k], -127);  // clamped symmetric code, never -128
  }
  EXPECT_EQ(qb.col_sums[0], -127 * 4);

  // All-max activations drive the biggest possible accumulations; the
  // result must match the serial integer reference (i.e. no hidden
  // saturation in the SIMD tier).
  Matrix a(2, 4, 100.0f);
  Matrix out, out_serial;
  matmul_quant(a, qb, out);
  matmul_quant_serial(a, qb, out_serial);
  EXPECT_TRUE(bitwise_equal(out, out_serial));
  EXPECT_NEAR(out.at(0, 0), 4 * 100.0f * -2.5f, 1e-1f);
}

TEST(MatmulQuant, MatchesFp32WithinQuantizationError) {
  Rng rng(7);
  const std::size_t m = 64, kn = 48, cn = 33;
  const Matrix a = random_matrix(m, kn, rng, 2.0f);
  const Matrix b = random_matrix(cn, kn, rng, 0.5f);
  QuantizedMatrix qb;
  quantize_pack_b(b, qb);
  Matrix exact, approx;
  matmul_transb(a, b, exact);
  matmul_quant(a, qb, approx);
  // Error budget: per-element |err| ≲ K · (step_a·|w|max + step_b·|a|max).
  // With u7 activations over [-2,2] and s8 weights over [-.5,.5]:
  // 48 · (4/127·0.5 + 1/127·2) ≈ 1.5 worst-case; typical error is far
  // smaller, and the relative Frobenius error is the robust check.
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double d = exact.data()[i] - approx.data()[i];
    num += d * d;
    den += static_cast<double>(exact.data()[i]) * exact.data()[i];
  }
  EXPECT_LT(std::sqrt(num / den), 0.02);
}

TEST(MatmulQuant, BitIdenticalAcrossSimdTiers) {
  Rng rng(11);
  for (const auto [m, kn, cn] :
       {std::tuple{17ul, 7ul, 13ul}, std::tuple{64ul, 48ul, 128ul},
        std::tuple{3ul, 4ul, 8ul}, std::tuple{33ul, 65ul, 9ul}}) {
    const Matrix a = random_matrix(m, kn, rng, 2.0f);
    const Matrix b = random_matrix(cn, kn, rng);
    QuantizedMatrix qb_simd, qb_ref;
    Matrix out_simd, out_ref;
    {
      SimdGuard guard(true);  // no-op off x86; tiers then trivially agree
      quantize_pack_b(b, qb_simd);
      matmul_quant(a, qb_simd, out_simd);
    }
    {
      SimdGuard guard(false);
      quantize_pack_b(b, qb_ref);
      matmul_quant(a, qb_ref, out_ref);
    }
    // Packing is tier-independent (same bytes), and the product must be
    // bit-identical — the u7 activation range leaves no room for i16
    // saturation divergence in vpmaddubsw.
    EXPECT_EQ(qb_simd.data, qb_ref.data) << m << "x" << kn << "x" << cn;
    EXPECT_EQ(qb_simd.col_sums, qb_ref.col_sums);
    EXPECT_TRUE(bitwise_equal(out_simd, out_ref))
        << m << "x" << kn << "x" << cn;
  }
}

TEST(MatmulQuant, BitIdenticalAcrossThreadCountsAndPartitionings) {
  Rng rng(13);
  // Big enough to clear the parallel work threshold.
  const Matrix a = random_matrix(512, 96, rng, 1.5f);
  const Matrix b = random_matrix(160, 96, rng);
  QuantizedMatrix qb;
  quantize_pack_b(b, qb);

  Matrix out_serial;
  matmul_quant_serial(a, qb, out_serial);

  for (const std::size_t threads : {1ul, 2ul, 4ul}) {
    nfv::util::set_global_threads(threads);
    Matrix out;
    matmul_quant(a, qb, out);
    EXPECT_TRUE(bitwise_equal(out, out_serial)) << threads << " threads";
  }
  nfv::util::set_global_threads(0);

  // Row-by-row calls (the window-by-window scoring shape) must agree with
  // the fused batch elementwise.
  for (std::size_t i = 0; i < 8; ++i) {
    Matrix row(1, a.cols());
    std::memcpy(row.data(), a.row(i), a.cols() * sizeof(float));
    Matrix out_row;
    matmul_quant(row, qb, out_row);
    for (std::size_t c = 0; c < b.rows(); ++c) {
      EXPECT_EQ(out_row.at(0, c), out_serial.at(i, c))
          << "row " << i << " channel " << c;
    }
  }
}

TEST(MatmulQuant, ZeroActivationRowsAndEmptyInputs) {
  Rng rng(17);
  const Matrix b = random_matrix(12, 8, rng);
  QuantizedMatrix qb;
  quantize_pack_b(b, qb);

  Matrix a(4, 8, 0.0f);  // all-zero rows: range 0 → exact zero codes
  Matrix out;
  matmul_quant(a, qb, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], 0.0f);
  }

  Matrix empty(0, 8);
  matmul_quant(empty, qb, out);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 12u);
}

SequenceModelConfig small_config() {
  SequenceModelConfig config;
  config.vocab = 11;
  config.embed_dim = 4;
  config.hidden = 6;
  config.layers = 2;
  config.window = 5;
  return config;
}

std::vector<SeqExample> make_examples(const SequenceModelConfig& config,
                                      std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SeqExample> examples(count);
  for (SeqExample& ex : examples) {
    ex.ids.resize(config.window);
    ex.dts.resize(config.window);
    for (std::size_t t = 0; t < config.window; ++t) {
      ex.ids[t] = static_cast<std::int32_t>(rng.uniform_index(config.vocab));
      ex.dts[t] = static_cast<float>(rng.uniform(1.0, 100.0));
    }
    ex.target = static_cast<std::int32_t>(rng.uniform_index(config.vocab));
  }
  return examples;
}

TEST(SequenceModelQuantize, SidecarLifecycleFollowsWeightMutations) {
  const SequenceModelConfig config = small_config();
  Rng rng(19);
  SequenceModel model(config, rng);
  EXPECT_FALSE(model.quantized());
  EXPECT_EQ(model.quantized_weight_bytes(), 0u);

  model.quantize();
  ASSERT_TRUE(model.quantized());
  EXPECT_GT(model.quantized_weight_bytes(), 0u);
  EXPECT_LT(model.quantized_weight_bytes(), model.fp32_weight_bytes());
  ASSERT_NE(model.quantized_weights(), nullptr);
  EXPECT_EQ(model.quantized_weights()->lstm.size(), config.layers);

  // Training changes the fp32 weights → the stale sidecar must drop.
  const auto examples = make_examples(config, 8, 23);
  std::vector<const SeqExample*> batch;
  for (const SeqExample& ex : examples) batch.push_back(&ex);
  Adam adam(1e-2f);
  adam.bind(model.params());
  model.train_batch(batch, adam);
  EXPECT_FALSE(model.quantized());

  // Re-quantize, then reshape: grow_vocab must drop it too.
  model.quantize();
  ASSERT_TRUE(model.quantized());
  Rng grow_rng(29);
  model.grow_vocab(config.vocab + 2, grow_rng);
  EXPECT_FALSE(model.quantized());

  // And clear_quantized() restores bit-exact fp32 scoring.
  const auto examples2 = make_examples(config, 8, 31);
  std::vector<const SeqExample*> batch2;
  for (const SeqExample& ex : examples2) batch2.push_back(&ex);
  const std::vector<double> fp32_scores = model.score_log_likelihood(batch2);
  model.quantize();
  model.clear_quantized();
  EXPECT_EQ(model.score_log_likelihood(batch2), fp32_scores);
}

TEST(SequenceModelQuantize, SerialAndBatchedQuantizedScoresAgree) {
  const SequenceModelConfig config = small_config();
  Rng rng(37);
  SequenceModel model(config, rng);
  model.quantize();

  const auto examples = make_examples(config, 32, 41);
  std::vector<const SeqExample*> batch;
  for (const SeqExample& ex : examples) batch.push_back(&ex);

  // Serial reference (predict()-based) vs fused batches of several sizes:
  // within quantized mode everything must stay bit-identical, exactly as
  // in fp32 mode.
  const std::vector<double> serial = model.score_log_likelihood(batch);
  const std::vector<std::size_t> serial_ranks =
      model.score_target_ranks(batch);
  SequenceModel::InferenceScratch scratch;
  for (const std::size_t batch_size : {1ul, 7ul, 32ul, 1024ul}) {
    std::vector<double> batched(batch.size());
    model.score_batched({batch.data(), batch.size()}, batch_size, scratch,
                        batched);
    EXPECT_EQ(batched, serial) << "batch_size " << batch_size;
    std::vector<std::size_t> ranks(batch.size());
    model.score_ranks_batched({batch.data(), batch.size()}, batch_size,
                              scratch, ranks);
    EXPECT_EQ(ranks, serial_ranks) << "batch_size " << batch_size;
  }
}

}  // namespace
}  // namespace nfv::ml
