// Property-style parameterized sweeps (TEST_P) over the library's core
// invariants: distribution moments across seeds, signature-tree
// idempotence across merge thresholds, dataset-window algebra across
// window lengths, mapper accounting across predictive periods, K-means
// label validity across K, and ν-OC-SVM's outlier bound across ν.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/mapper.h"
#include "logproc/dataset.h"
#include "logproc/signature_tree.h"
#include "ml/kmeans.h"
#include "ml/ocsvm.h"
#include "simnet/template_catalog.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace nfv {
namespace {

// ---------------------------------------------------------- RNG sweeps ----

class RngMomentsP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngMomentsP, UniformMoments) {
  util::Rng rng(GetParam());
  const int n = 50000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0 / 3.0, 0.02);
}

TEST_P(RngMomentsP, ExponentialMeanMatches) {
  util::Rng rng(GetParam());
  const double mean = 3.0 + static_cast<double>(GetParam() % 5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST_P(RngMomentsP, PoissonMeanMatches) {
  util::Rng rng(GetParam());
  const double mean = 1.0 + static_cast<double>(GetParam() % 7);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.06);
}

TEST_P(RngMomentsP, ForkedStreamsAreDecorrelated) {
  util::Rng parent(GetParam());
  util::Rng a = parent.fork(1);
  util::Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngMomentsP,
                         ::testing::Values(1u, 7u, 42u, 1000u, 31337u,
                                           0xdeadbeefu));

// ------------------------------------------------ signature-tree sweeps ----

class SignatureTreeP : public ::testing::TestWithParam<double> {};

TEST_P(SignatureTreeP, LearnThenMatchIsIdempotent) {
  // Whatever the merge threshold, a learned line must afterwards match to
  // the same id it was assigned, and matching must not grow the tree.
  logproc::SignatureTreeConfig config;
  config.merge_threshold = GetParam();
  logproc::SignatureTree tree(config);

  const auto catalog = simnet::TemplateCatalog::standard();
  util::Rng rng(11);
  std::vector<std::string> lines;
  std::vector<std::int32_t> ids;
  for (int i = 0; i < 400; ++i) {
    const auto template_id =
        static_cast<std::int32_t>(rng.uniform_index(catalog.size()));
    lines.push_back(catalog.render(template_id, rng));
    ids.push_back(tree.learn(lines.back()));
  }
  const std::size_t size_after_learning = tree.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(tree.match(lines[i]), ids[i]) << lines[i];
  }
  EXPECT_EQ(tree.size(), size_after_learning);
}

TEST_P(SignatureTreeP, IdsStayDense) {
  logproc::SignatureTreeConfig config;
  config.merge_threshold = GetParam();
  logproc::SignatureTree tree(config);
  const auto catalog = simnet::TemplateCatalog::standard();
  util::Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    const auto id = tree.learn(catalog.render(
        static_cast<std::int32_t>(rng.uniform_index(catalog.size())), rng));
    EXPECT_GE(id, 0);
    EXPECT_LT(static_cast<std::size_t>(id), tree.size());
  }
  for (std::size_t i = 0; i < tree.size(); ++i) {
    // Ids are dense in creation order: every one renders and was hit.
    EXPECT_GE(tree.match_count(static_cast<std::int32_t>(i)), 1u);
    EXPECT_FALSE(tree.pattern(static_cast<std::int32_t>(i)).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(MergeThresholds, SignatureTreeP,
                         ::testing::Values(0.5, 0.6, 0.75, 0.9, 1.0));

// ------------------------------------------------------- dataset sweeps ----

class WindowLengthP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowLengthP, ExampleCountAndContents) {
  const std::size_t k = GetParam();
  std::vector<logproc::ParsedLog> logs;
  for (int i = 0; i < 100; ++i) {
    logs.push_back({util::SimTime{i * 30}, i % 6});
  }
  const auto examples = logproc::build_sequence_examples(logs, k);
  ASSERT_EQ(examples.size(), logs.size() - k);
  for (std::size_t e = 0; e < examples.size(); ++e) {
    ASSERT_EQ(examples[e].ids.size(), k);
    ASSERT_EQ(examples[e].dts.size(), k);
    // Window contents are exactly the k logs preceding the target.
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_EQ(examples[e].ids[j], logs[e + j].template_id);
    }
    EXPECT_EQ(examples[e].target, logs[e + k].template_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowLengthP,
                         ::testing::Values(1u, 2u, 5u, 10u, 25u, 60u));

// -------------------------------------------------------- mapper sweeps ----

class MapperPeriodP : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MapperPeriodP, AccountingAlwaysBalances) {
  // early warnings + errors + false alarms == number of anomalies, for any
  // predictive-period length.
  core::MappingConfig config;
  config.predictive_period = util::Duration::of_minutes(GetParam());

  std::vector<simnet::Ticket> tickets;
  for (int i = 0; i < 5; ++i) {
    simnet::Ticket t;
    t.ticket_id = i;
    t.vpe = 0;
    t.category = simnet::TicketCategory::kCircuit;
    t.report = util::SimTime{100000 + i * 50000};
    t.repair_finish = t.report + util::Duration::of_hours(2);
    tickets.push_back(t);
  }
  std::vector<util::SimTime> anomalies;
  util::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    anomalies.push_back(util::SimTime{static_cast<std::int64_t>(
        rng.uniform(0.0, 400000.0))});
  }
  std::sort(anomalies.begin(), anomalies.end());
  const auto result = core::map_anomalies(anomalies, tickets, 0, config);
  EXPECT_EQ(result.early_warnings + result.errors + result.false_alarms,
            anomalies.size());
  EXPECT_EQ(result.anomalies.size(), anomalies.size());
  EXPECT_EQ(result.tickets.size(), tickets.size());
  // Every early warning's lead is within the configured period.
  for (const auto& anomaly : result.anomalies) {
    if (anomaly.outcome == core::AnomalyOutcome::kEarlyWarning) {
      EXPECT_GT(anomaly.lead.seconds, 0);
      EXPECT_LE(anomaly.lead.seconds, config.predictive_period.seconds);
    }
  }
}

TEST_P(MapperPeriodP, LargerPeriodNeverDecreasesWarnings) {
  // Early warnings are monotone in the predictive-period length.
  std::vector<simnet::Ticket> tickets;
  simnet::Ticket t;
  t.ticket_id = 1;
  t.vpe = 0;
  t.report = util::SimTime{500000};
  t.repair_finish = util::SimTime{510000};
  tickets.push_back(t);
  std::vector<util::SimTime> anomalies;
  util::Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    anomalies.push_back(util::SimTime{static_cast<std::int64_t>(
        rng.uniform(0.0, 520000.0))});
  }
  std::sort(anomalies.begin(), anomalies.end());

  core::MappingConfig narrow;
  narrow.predictive_period = util::Duration::of_minutes(GetParam());
  core::MappingConfig wide;
  wide.predictive_period =
      util::Duration::of_minutes(GetParam()) + util::Duration::of_hours(6);
  const auto narrow_result =
      core::map_anomalies(anomalies, tickets, 0, narrow);
  const auto wide_result = core::map_anomalies(anomalies, tickets, 0, wide);
  EXPECT_GE(wide_result.early_warnings, narrow_result.early_warnings);
  EXPECT_LE(wide_result.false_alarms, narrow_result.false_alarms);
}

INSTANTIATE_TEST_SUITE_P(Periods, MapperPeriodP,
                         ::testing::Values(1, 15, 60, 360, 1440, 2880));

// -------------------------------------------------------- kmeans sweeps ----

class KMeansKP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansKP, LabelsValidAndInertiaMonotone) {
  util::Rng rng(23);
  ml::Matrix data(60, 4);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const std::size_t k = GetParam();
  ml::KMeansConfig config;
  config.k = k;
  util::Rng kr(1);
  const auto result = ml::kmeans(data, config, kr);
  ASSERT_EQ(result.labels.size(), 60u);
  for (std::size_t label : result.labels) EXPECT_LT(label, k);
  EXPECT_EQ(result.centroids.rows(), k);

  if (k > 1) {
    ml::KMeansConfig fewer;
    fewer.k = k - 1;
    util::Rng kr2(1);
    const auto coarser = ml::kmeans(data, fewer, kr2);
    // k-means++ + farthest-point reseeding make this hold in practice for
    // random data with these seeds.
    EXPECT_LE(result.inertia, coarser.inertia * 1.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansKP,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 12u));

// --------------------------------------------------------- ocsvm sweeps ----

class OcSvmNuP : public ::testing::TestWithParam<double> {};

TEST_P(OcSvmNuP, NuBoundsTrainingOutliers) {
  const double nu = GetParam();
  util::Rng rng(29);
  ml::Matrix data(250, 2);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    data.at(r, 0) = static_cast<float>(rng.normal(0.0, 1.0));
    data.at(r, 1) = static_cast<float>(rng.normal(0.0, 1.0));
  }
  ml::OcSvmConfig config;
  config.nu = nu;
  ml::OcSvm svm(config);
  svm.fit(data);
  std::size_t outliers = 0;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    if (svm.decision_value(data.row_span(r)) < 0.0) ++outliers;
  }
  EXPECT_LE(static_cast<double>(outliers) / 250.0, nu + 0.1) << "nu=" << nu;
}

INSTANTIATE_TEST_SUITE_P(Nus, OcSvmNuP,
                         ::testing::Values(0.05, 0.1, 0.2, 0.35, 0.5));

// ------------------------------------------------------ sim-time sweeps ----

class MonthArithmeticP : public ::testing::TestWithParam<int> {};

TEST_P(MonthArithmeticP, MonthOfIsInverseOfMonthStart) {
  const int m = GetParam();
  const auto start = util::month_start(m);
  EXPECT_EQ(util::month_of(start), m);
  EXPECT_EQ(util::month_of(start + util::Duration::of_seconds(1)), m);
  EXPECT_EQ(util::month_of(util::month_start(m + 1) -
                           util::Duration::of_seconds(1)),
            m);
}

INSTANTIATE_TEST_SUITE_P(Months, MonthArithmeticP,
                         ::testing::Values(0, 1, 5, 12, 17, 100));

// ---------------------------------------------------------- stats sweep ----

class QuantileP : public ::testing::TestWithParam<double> {};

TEST_P(QuantileP, QuantileWithinRangeAndMonotone) {
  util::Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(10.0, 3.0));
  const double q = GetParam();
  const double value = util::quantile(xs, q);
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  EXPECT_GE(value, *lo);
  EXPECT_LE(value, *hi);
  if (q >= 0.01) {
    EXPECT_GE(value, util::quantile(xs, q - 0.01));
  }
}

INSTANTIATE_TEST_SUITE_P(Qs, QuantileP,
                         ::testing::Values(0.0, 0.01, 0.25, 0.5, 0.9, 0.995,
                                           1.0));

}  // namespace
}  // namespace nfv
