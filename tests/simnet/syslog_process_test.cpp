#include "simnet/syslog_process.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "simnet/fleet.h"
#include "util/stats.h"

namespace nfv::simnet {
namespace {

using nfv::util::Duration;
using nfv::util::Rng;
using nfv::util::SimTime;

struct Fixture {
  TemplateCatalog catalog = TemplateCatalog::standard();
  std::vector<VpeProfile> profiles;

  Fixture() {
    FleetProfileConfig config;
    config.num_vpes = 4;
    config.num_clusters = 2;
    config.num_outliers = 1;
    Rng rng(3);
    profiles = make_fleet_profiles(catalog, config, rng);
  }
};

TEST(SyslogProcess, OutputSortedAndInRange) {
  Fixture f;
  SyslogProcessConfig config;
  SyslogProcess process(&f.catalog, &f.profiles[0], never(), config,
                        Rng(11));
  const SimTime end = SimTime{14 * 86400};
  const auto logs = process.generate(SimTime::epoch(), end, {});
  ASSERT_GT(logs.size(), 50u);
  EXPECT_TRUE(std::is_sorted(logs.begin(), logs.end(),
                             [](const RawLogRecord& a, const RawLogRecord& b) {
                               return a.time < b.time;
                             }));
  for (const RawLogRecord& rec : logs) {
    EXPECT_GE(rec.time, SimTime::epoch());
    EXPECT_LT(rec.time, end);
    EXPECT_EQ(rec.vpe, 0);
    EXPECT_FALSE(rec.anomalous);
    EXPECT_FALSE(rec.text.empty());
  }
}

TEST(SyslogProcess, DeterministicGivenSeed) {
  Fixture f;
  SyslogProcessConfig config;
  SyslogProcess a(&f.catalog, &f.profiles[0], never(), config, Rng(5));
  SyslogProcess b(&f.catalog, &f.profiles[0], never(), config, Rng(5));
  const SimTime end = SimTime{5 * 86400};
  const auto logs_a = a.generate(SimTime::epoch(), end, {});
  const auto logs_b = b.generate(SimTime::epoch(), end, {});
  ASSERT_EQ(logs_a.size(), logs_b.size());
  for (std::size_t i = 0; i < logs_a.size(); ++i) {
    EXPECT_EQ(logs_a[i].time, logs_b[i].time);
    EXPECT_EQ(logs_a[i].text, logs_b[i].text);
  }
}

TEST(SyslogProcess, GapScaleThinsTheStream) {
  Fixture f;
  SyslogProcessConfig dense;
  SyslogProcessConfig sparse;
  sparse.gap_scale = 4.0;
  const SimTime end = SimTime{20 * 86400};
  SyslogProcess pd(&f.catalog, &f.profiles[0], never(), dense, Rng(7));
  SyslogProcess ps(&f.catalog, &f.profiles[0], never(), sparse, Rng(7));
  const auto dense_logs = pd.generate(SimTime::epoch(), end, {});
  const auto sparse_logs = ps.generate(SimTime::epoch(), end, {});
  EXPECT_GT(dense_logs.size(), 2 * sparse_logs.size());
}

TEST(SyslogProcess, PostUpdateTemplatesAppearOnlyAfterUpdate) {
  Fixture f;
  // Use an update-affected profile.
  const VpeProfile* updated = nullptr;
  for (const VpeProfile& p : f.profiles) {
    if (p.affected_by_update) updated = &p;
  }
  ASSERT_NE(updated, nullptr);
  const SimTime update_time{10 * 86400};
  SyslogProcessConfig config;
  SyslogProcess process(&f.catalog, updated, update_time, config, Rng(13));
  const auto logs =
      process.generate(SimTime::epoch(), SimTime{20 * 86400}, {});
  bool post_seen_before = false;
  bool post_seen_after = false;
  for (const RawLogRecord& rec : logs) {
    if (f.catalog.at(rec.true_template).kind == TemplateKind::kPostUpdate) {
      if (rec.time < update_time) post_seen_before = true;
      if (rec.time >= update_time) post_seen_after = true;
    }
  }
  EXPECT_FALSE(post_seen_before);
  EXPECT_TRUE(post_seen_after);
}

TEST(SyslogProcess, MaintenanceWindowEmitsMaintenanceChatter) {
  Fixture f;
  MaintenanceWindow window;
  window.vpe = 0;
  window.start = SimTime{2 * 86400};
  window.length = Duration::of_hours(2);
  SyslogProcessConfig config;
  SyslogProcess process(&f.catalog, &f.profiles[0], never(), config,
                        Rng(17));
  const auto logs = process.generate(SimTime::epoch(), SimTime{4 * 86400},
                                     {&window, 1});
  std::size_t maint_in_window = 0;
  std::size_t maint_outside = 0;
  for (const RawLogRecord& rec : logs) {
    if (f.catalog.at(rec.true_template).kind != TemplateKind::kMaintenance) {
      continue;
    }
    if (rec.time >= window.start && rec.time <= window.end()) {
      ++maint_in_window;
    } else {
      ++maint_outside;
    }
  }
  EXPECT_GE(maint_in_window, 3u);
  EXPECT_EQ(maint_outside, 0u);
}

TEST(SyslogProcess, BenignBurstsPresentAndClustered) {
  Fixture f;
  SyslogProcessConfig config;
  config.benign_burst_rate_per_day = 1.0;  // exaggerate for the test
  SyslogProcess process(&f.catalog, &f.profiles[0], never(), config,
                        Rng(19));
  const auto logs =
      process.generate(SimTime::epoch(), SimTime{30 * 86400}, {});
  std::vector<SimTime> rare_times;
  for (const RawLogRecord& rec : logs) {
    if (f.catalog.at(rec.true_template).kind == TemplateKind::kBenignRare) {
      rare_times.push_back(rec.time);
    }
  }
  // ~30 bursts of ≥2 logs expected.
  EXPECT_GE(rare_times.size(), 30u);
  // Bursty: many consecutive rare logs are less than 2 minutes apart.
  std::size_t close_pairs = 0;
  for (std::size_t i = 1; i < rare_times.size(); ++i) {
    if (rare_times[i] - rare_times[i - 1] <= Duration::of_minutes(2)) {
      ++close_pairs;
    }
  }
  EXPECT_GT(close_pairs, rare_times.size() / 3);
}

TEST(SyslogProcess, MotifChainsAppearInOrder) {
  Fixture f;
  SyslogProcessConfig config;
  config.motif_probability = 0.5;
  SyslogProcess process(&f.catalog, &f.profiles[0], never(), config,
                        Rng(23));
  const auto logs =
      process.generate(SimTime::epoch(), SimTime{30 * 86400}, {});
  // Look for at least one full occurrence of some profile motif chain as a
  // consecutive subsequence.
  bool found = false;
  for (const Motif& motif : f.profiles[0].normal.motifs) {
    for (std::size_t i = 0;
         !found && i + motif.chain.size() <= logs.size(); ++i) {
      bool all = true;
      for (std::size_t j = 0; j < motif.chain.size(); ++j) {
        if (logs[i + j].true_template != motif.chain[j]) {
          all = false;
          break;
        }
      }
      found = found || all;
    }
    if (found) break;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace nfv::simnet
