#include "simnet/vpe_profile.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace nfv::simnet {
namespace {

std::vector<VpeProfile> standard_profiles(std::uint64_t seed = 1) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  FleetProfileConfig config;
  nfv::util::Rng rng(seed);
  return make_fleet_profiles(catalog, config, rng);
}

TEST(VpeProfile, FleetSizeAndClusters) {
  const auto profiles = standard_profiles();
  ASSERT_EQ(profiles.size(), 38u);
  for (const VpeProfile& p : profiles) {
    EXPECT_GE(p.cluster, 0);
    EXPECT_LT(p.cluster, 4);
    EXPECT_EQ(p.vpe_id, &p - profiles.data());
  }
}

TEST(VpeProfile, Deterministic) {
  const auto a = standard_profiles(9);
  const auto b = standard_profiles(9);
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v].normal.weights, b[v].normal.weights);
    EXPECT_EQ(a[v].fault_rate_scale, b[v].fault_rate_scale);
  }
}

TEST(VpeProfile, ConfiguredOutlierCount) {
  const auto profiles = standard_profiles();
  int outliers = 0;
  for (const VpeProfile& p : profiles) {
    if (p.divergence > 1.0) ++outliers;
  }
  EXPECT_EQ(outliers, 5);
}

TEST(VpeProfile, UpdateFractionRespected) {
  const auto profiles = standard_profiles();
  int updated = 0;
  for (const VpeProfile& p : profiles) {
    if (p.affected_by_update) ++updated;
  }
  EXPECT_NEAR(static_cast<double>(updated) / 38.0, 0.6, 0.03);
}

TEST(VpeProfile, OnlyNormalTemplatesWeightedPreUpdate) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  const auto profiles = standard_profiles();
  for (const LogTemplate& t : catalog.all()) {
    if (t.kind == TemplateKind::kNormal) continue;
    for (const VpeProfile& p : profiles) {
      EXPECT_DOUBLE_EQ(p.normal.weights[static_cast<std::size_t>(t.id)], 0.0)
          << t.name;
    }
  }
}

TEST(VpeProfile, PostUpdateIntroducesNewTemplates) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  const auto profiles = standard_profiles();
  const auto new_ids = catalog.ids_of_kind(TemplateKind::kPostUpdate);
  for (const VpeProfile& p : profiles) {
    double new_mass = 0.0;
    for (std::int32_t id : new_ids) {
      new_mass += p.post_update.weights[static_cast<std::size_t>(id)];
    }
    if (p.affected_by_update) {
      EXPECT_GT(new_mass, 0.0) << "vPE " << p.vpe_id;
    } else {
      EXPECT_DOUBLE_EQ(new_mass, 0.0) << "vPE " << p.vpe_id;
    }
  }
}

TEST(VpeProfile, PostUpdateShiftsDistribution) {
  const auto profiles = standard_profiles();
  // The weight permutation + new templates must change the emission
  // distribution substantially for the typical updated vPE (§3.3:
  // month-over-month cosine similarity collapses at the update). A rare
  // vPE can shift less when the random permutation happens to be
  // near-identity on its few dominant templates, so assert on the bulk.
  int updated = 0;
  int shifted = 0;
  double sim_sum = 0.0;
  for (const VpeProfile& p : profiles) {
    if (!p.affected_by_update) continue;
    auto before = p.normal.weights;
    auto after = p.post_update.weights;
    nfv::util::normalize_l1(before);
    nfv::util::normalize_l1(after);
    const double sim = nfv::util::cosine_similarity(before, after);
    ++updated;
    sim_sum += sim;
    if (sim < 0.9) ++shifted;
  }
  ASSERT_GT(updated, 0);
  EXPECT_GE(static_cast<double>(shifted) / updated, 0.8);
  EXPECT_LT(sim_sum / updated, 0.7);
}

TEST(VpeProfile, MotifChainsReferenceValidTemplates) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  const auto profiles = standard_profiles();
  for (const VpeProfile& p : profiles) {
    EXPECT_FALSE(p.normal.motifs.empty());
    for (const Motif& m : p.normal.motifs) {
      EXPECT_GE(m.chain.size(), 2u);
      for (std::int32_t id : m.chain) {
        EXPECT_GE(id, 0);
        EXPECT_LT(static_cast<std::size_t>(id), catalog.size());
      }
    }
  }
}

TEST(VpeProfile, SameClusterMoreSimilarThanCrossCluster) {
  const auto profiles = standard_profiles();
  // Compare non-outlier vPEs: same-cluster cosine similarity should on
  // average beat cross-cluster similarity.
  double same = 0.0;
  int same_n = 0;
  double cross = 0.0;
  int cross_n = 0;
  for (std::size_t a = 0; a < profiles.size(); ++a) {
    if (profiles[a].divergence > 1.0) continue;
    for (std::size_t b = a + 1; b < profiles.size(); ++b) {
      if (profiles[b].divergence > 1.0) continue;
      auto wa = profiles[a].normal.weights;
      auto wb = profiles[b].normal.weights;
      nfv::util::normalize_l1(wa);
      nfv::util::normalize_l1(wb);
      const double sim = nfv::util::cosine_similarity(wa, wb);
      if (profiles[a].cluster == profiles[b].cluster) {
        same += sim;
        ++same_n;
      } else {
        cross += sim;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n);
}

TEST(VpeProfile, FaultRateSkewIsHeavyTailed) {
  const auto profiles = standard_profiles();
  double max_scale = 0.0;
  double sum = 0.0;
  for (const VpeProfile& p : profiles) {
    max_scale = std::max(max_scale, p.fault_rate_scale);
    sum += p.fault_rate_scale;
  }
  // A few vPEs should dominate (Fig. 2): max well above the mean.
  EXPECT_GT(max_scale, 2.0 * sum / 38.0);
}

}  // namespace
}  // namespace nfv::simnet
