#include "simnet/fleet.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/thread_pool.h"

#include <algorithm>
#include <map>

namespace nfv::simnet {
namespace {

using nfv::util::Duration;
using nfv::util::SimTime;

TEST(Fleet, SmallConfigRunsAndIsConsistent) {
  const FleetConfig config = small_fleet_config(7);
  const FleetTrace trace = simulate_fleet(config);
  EXPECT_EQ(trace.num_vpes(), config.profiles.num_vpes);
  EXPECT_EQ(trace.horizon, nfv::util::month_start(config.months));
  EXPECT_GT(trace.total_log_count(), 1000u);
  EXPECT_GT(trace.tickets.size(), 10u);
  EXPECT_FALSE(trace.faults.empty());
  EXPECT_EQ(trace.update_time_by_vpe.size(),
            static_cast<std::size_t>(config.profiles.num_vpes));
}

TEST(Fleet, DeterministicInSeed) {
  const FleetTrace a = simulate_fleet(small_fleet_config(11));
  const FleetTrace b = simulate_fleet(small_fleet_config(11));
  ASSERT_EQ(a.total_log_count(), b.total_log_count());
  ASSERT_EQ(a.tickets.size(), b.tickets.size());
  for (std::size_t i = 0; i < a.tickets.size(); ++i) {
    EXPECT_EQ(a.tickets[i].report, b.tickets[i].report);
    EXPECT_EQ(a.tickets[i].category, b.tickets[i].category);
  }
  EXPECT_EQ(a.logs_by_vpe[0][100].text, b.logs_by_vpe[0][100].text);
}

TEST(Fleet, ShardedTraceByteIdenticalToSerial) {
  // The per-vPE syslog generation fans out over the thread pool; the trace
  // must stay byte-identical to the single-threaded build. Full 38-vPE
  // fleet (the paper's deployment), short horizon to bound runtime.
  FleetConfig config;
  config.seed = 37;
  config.months = 2;
  config.syslog.gap_scale = 8.0;
  nfv::util::set_global_threads(1);
  const FleetTrace serial = simulate_fleet(config);
  nfv::util::set_global_threads(4);
  const FleetTrace sharded = simulate_fleet(config);
  nfv::util::set_global_threads(0);  // back to the environment default
  ASSERT_EQ(serial.num_vpes(), 38);
  ASSERT_EQ(serial.logs_by_vpe.size(), sharded.logs_by_vpe.size());
  for (std::size_t v = 0; v < serial.logs_by_vpe.size(); ++v) {
    const auto& a = serial.logs_by_vpe[v];
    const auto& b = sharded.logs_by_vpe[v];
    ASSERT_EQ(a.size(), b.size()) << "vPE " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].time, b[i].time) << "vPE " << v << " record " << i;
      ASSERT_EQ(a[i].vpe, b[i].vpe) << "vPE " << v << " record " << i;
      ASSERT_EQ(a[i].text, b[i].text) << "vPE " << v << " record " << i;
      ASSERT_EQ(a[i].true_template, b[i].true_template)
          << "vPE " << v << " record " << i;
      ASSERT_EQ(a[i].anomalous, b[i].anomalous)
          << "vPE " << v << " record " << i;
    }
  }
}

TEST(Fleet, DifferentSeedsDiffer) {
  const FleetTrace a = simulate_fleet(small_fleet_config(1));
  const FleetTrace b = simulate_fleet(small_fleet_config(2));
  EXPECT_NE(a.total_log_count(), b.total_log_count());
}

TEST(Fleet, LogsSortedPerVpeAndInHorizon) {
  const FleetTrace trace = simulate_fleet(small_fleet_config(13));
  for (const auto& logs : trace.logs_by_vpe) {
    EXPECT_TRUE(std::is_sorted(logs.begin(), logs.end(),
                               [](const RawLogRecord& a,
                                  const RawLogRecord& b) {
                                 return a.time < b.time;
                               }));
    for (const RawLogRecord& rec : logs) {
      EXPECT_GE(rec.time, SimTime::epoch());
      EXPECT_LT(rec.time, trace.horizon);
    }
  }
}

TEST(Fleet, LogVpeFieldMatchesStreamIndex) {
  const FleetTrace trace = simulate_fleet(small_fleet_config(17));
  for (int v = 0; v < trace.num_vpes(); ++v) {
    for (const RawLogRecord& rec :
         trace.logs_by_vpe[static_cast<std::size_t>(v)]) {
      EXPECT_EQ(rec.vpe, v);
    }
  }
}

TEST(Fleet, AnomalousLogsExistAndTieToFaultWindows) {
  const FleetTrace trace = simulate_fleet(small_fleet_config(19));
  std::size_t anomalous = 0;
  for (const auto& logs : trace.logs_by_vpe) {
    for (const RawLogRecord& rec : logs) {
      if (rec.anomalous) ++anomalous;
    }
  }
  EXPECT_GT(anomalous, 20u);
}

TEST(Fleet, UpdateTimesOnlyForAffectedVpes) {
  const FleetConfig config = small_fleet_config(23);
  const FleetTrace trace = simulate_fleet(config);
  const SimTime rollout = nfv::util::month_start(config.update_month);
  int updated = 0;
  for (std::size_t v = 0; v < trace.profiles.size(); ++v) {
    const bool affected = trace.profiles[v].affected_by_update;
    if (affected) {
      ++updated;
      EXPECT_GE(trace.update_time_by_vpe[v], rollout);
      EXPECT_LT(trace.update_time_by_vpe[v],
                rollout + Duration::of_days(22));
    } else {
      EXPECT_EQ(trace.update_time_by_vpe[v], never());
    }
  }
  EXPECT_GT(updated, 0);
}

TEST(Fleet, UpdateDisabledWhenMonthNegative) {
  FleetConfig config = small_fleet_config(29);
  config.update_month = -1;
  const FleetTrace trace = simulate_fleet(config);
  for (const SimTime t : trace.update_time_by_vpe) {
    EXPECT_EQ(t, never());
  }
}

TEST(Fleet, MaintenanceDominatesTicketMix) {
  // Fig. 1(a): maintenance is the dominant root cause. Use a full-size
  // fleet but few months to keep runtime bounded.
  FleetConfig config;
  config.months = 12;
  config.syslog.gap_scale = 8.0;
  config.faults.fleet_wide_events = 2;
  const FleetTrace trace = simulate_fleet(config);
  std::map<TicketCategory, std::size_t> counts;
  for (const Ticket& t : trace.tickets) ++counts[t.category];
  const std::size_t maintenance = counts[TicketCategory::kMaintenance];
  const double share =
      static_cast<double>(maintenance) / trace.tickets.size();
  EXPECT_GT(share, 0.22);
  // Maintenance is the single largest category.
  for (const auto& [category, count] : counts) {
    if (category != TicketCategory::kMaintenance) {
      EXPECT_LE(count, maintenance) << to_string(category);
    }
  }
  // And every category appears.
  for (const TicketCategory category :
       {TicketCategory::kCircuit, TicketCategory::kCable,
        TicketCategory::kHardware, TicketCategory::kSoftware,
        TicketCategory::kDuplicate}) {
    bool found = false;
    for (const Ticket& t : trace.tickets) {
      found = found || t.category == category;
    }
    EXPECT_TRUE(found) << to_string(category);
  }
}

TEST(Fleet, RejectsZeroMonths) {
  FleetConfig config = small_fleet_config(31);
  config.months = 0;
  EXPECT_THROW(simulate_fleet(config), nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::simnet
