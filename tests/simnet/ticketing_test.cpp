#include "simnet/ticketing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace nfv::simnet {
namespace {

using nfv::util::Rng;
using nfv::util::SimTime;

FaultSchedule make_schedule() {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  FleetProfileConfig profile_config;
  profile_config.num_vpes = 8;
  profile_config.num_clusters = 2;
  profile_config.num_outliers = 1;
  Rng rng(41);
  const auto profiles = make_fleet_profiles(catalog, profile_config, rng);
  FaultInjectorConfig fault_config;
  Rng fault_rng(42);
  return inject_faults(profiles, SimTime{18LL * 30 * 86400}, fault_config,
                       fault_rng);
}

TEST(Ticketing, OneTicketPerFaultPlusExtras) {
  FaultSchedule schedule = make_schedule();
  const std::size_t fault_count = schedule.faults.size();
  const std::size_t window_count = schedule.maintenance.size();
  TicketingConfig config;
  Rng rng(1);
  const TicketingResult result = run_ticketing(schedule, config, rng);
  std::size_t primaries = 0;
  std::size_t maintenance = 0;
  std::size_t duplicates = 0;
  for (const Ticket& t : result.tickets) {
    if (t.category == TicketCategory::kMaintenance) {
      ++maintenance;
    } else if (t.category == TicketCategory::kDuplicate) {
      ++duplicates;
    } else {
      ++primaries;
    }
  }
  EXPECT_EQ(primaries, fault_count);
  EXPECT_EQ(maintenance, window_count);
  EXPECT_GT(duplicates, 0u);
}

TEST(Ticketing, ReportAfterOnsetAndRepairAfterReport) {
  FaultSchedule schedule = make_schedule();
  std::map<std::int64_t, SimTime> onset_by_fault;
  for (const FaultEvent& f : schedule.faults) {
    onset_by_fault[f.fault_id] = f.onset;
  }
  TicketingConfig config;
  Rng rng(2);
  const TicketingResult result = run_ticketing(schedule, config, rng);
  for (const Ticket& t : result.tickets) {
    EXPECT_LT(t.report, t.repair_finish);
    if (t.fault_id >= 0 && t.category != TicketCategory::kDuplicate) {
      EXPECT_GT(t.report, onset_by_fault[t.fault_id]);
    }
  }
}

TEST(Ticketing, FaultClearedMatchesPrimaryRepair) {
  FaultSchedule schedule = make_schedule();
  TicketingConfig config;
  Rng rng(3);
  const TicketingResult result = run_ticketing(schedule, config, rng);
  std::map<std::int64_t, SimTime> repair_by_fault;
  for (const Ticket& t : result.tickets) {
    if (t.fault_id >= 0 && t.category != TicketCategory::kDuplicate) {
      repair_by_fault[t.fault_id] = t.repair_finish;
    }
  }
  for (const FaultEvent& f : schedule.faults) {
    EXPECT_EQ(f.cleared, repair_by_fault[f.fault_id])
        << "fault " << f.fault_id;
  }
}

TEST(Ticketing, DuplicatesInsideOriginalTicketWindow) {
  FaultSchedule schedule = make_schedule();
  TicketingConfig config;
  config.p_duplicates = 1.0;  // force duplicates
  Rng rng(4);
  const TicketingResult result = run_ticketing(schedule, config, rng);
  std::map<std::int64_t, const Ticket*> primary_by_fault;
  for (const Ticket& t : result.tickets) {
    if (t.fault_id >= 0 && t.category != TicketCategory::kDuplicate) {
      primary_by_fault[t.fault_id] = &t;
    }
  }
  std::size_t duplicates = 0;
  for (const Ticket& t : result.tickets) {
    if (t.category != TicketCategory::kDuplicate) continue;
    ++duplicates;
    const Ticket* primary = primary_by_fault[t.fault_id];
    ASSERT_NE(primary, nullptr);
    EXPECT_GT(t.report, primary->report);
    EXPECT_LT(t.report, primary->repair_finish);
    EXPECT_EQ(t.vpe, primary->vpe);
  }
  EXPECT_GT(duplicates, 0u);
}

TEST(Ticketing, TicketsSortedAndUniqueIds) {
  FaultSchedule schedule = make_schedule();
  TicketingConfig config;
  Rng rng(5);
  const TicketingResult result = run_ticketing(schedule, config, rng);
  EXPECT_TRUE(std::is_sorted(result.tickets.begin(), result.tickets.end(),
                             [](const Ticket& a, const Ticket& b) {
                               return a.report < b.report;
                             }));
  std::map<std::int64_t, int> ids;
  for (const Ticket& t : result.tickets) ++ids[t.ticket_id];
  for (const auto& [id, count] : ids) EXPECT_EQ(count, 1);
}

TEST(Ticketing, MaintenanceTicketsSpanTheirWindow) {
  FaultSchedule schedule = make_schedule();
  TicketingConfig config;
  Rng rng(6);
  const TicketingResult result = run_ticketing(schedule, config, rng);
  std::size_t checked = 0;
  for (const Ticket& t : result.tickets) {
    if (t.category != TicketCategory::kMaintenance) continue;
    bool matched = false;
    for (const MaintenanceWindow& w : schedule.maintenance) {
      if (w.vpe == t.vpe && w.start == t.report &&
          w.end() == t.repair_finish) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Ticketing, NoDuplicatesWhenDisabled) {
  FaultSchedule schedule = make_schedule();
  TicketingConfig config;
  config.p_duplicates = 0.0;
  Rng rng(7);
  const TicketingResult result = run_ticketing(schedule, config, rng);
  for (const Ticket& t : result.tickets) {
    EXPECT_NE(t.category, TicketCategory::kDuplicate);
  }
}

}  // namespace
}  // namespace nfv::simnet
