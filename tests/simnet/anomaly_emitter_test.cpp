#include "simnet/anomaly_emitter.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <algorithm>
#include <map>

namespace nfv::simnet {
namespace {

using nfv::util::Duration;
using nfv::util::Rng;
using nfv::util::SimTime;

struct Fixture {
  TemplateCatalog catalog = TemplateCatalog::standard();
  FaultSchedule schedule;
  TicketingResult ticketing;

  explicit Fixture(std::uint64_t seed = 50, int num_vpes = 10) {
    FleetProfileConfig profile_config;
    profile_config.num_vpes = num_vpes;
    profile_config.num_clusters = 2;
    profile_config.num_outliers = 1;
    Rng rng(seed);
    const auto profiles = make_fleet_profiles(catalog, profile_config, rng);
    FaultInjectorConfig fault_config;
    Rng fault_rng(seed + 1);
    schedule = inject_faults(profiles, SimTime{18LL * 30 * 86400},
                             fault_config, fault_rng);
    TicketingConfig ticket_config;
    Rng ticket_rng(seed + 2);
    ticketing = run_ticketing(schedule, ticket_config, ticket_rng);
  }
};

TEST(AnomalyEmitter, AllRecordsMarkedAnomalous) {
  Fixture f;
  AnomalyEmitterConfig config;
  Rng rng(1);
  const auto logs = emit_fault_logs(f.schedule.faults, f.ticketing.tickets,
                                    f.catalog, config, rng);
  ASSERT_FALSE(logs.empty());
  for (const RawLogRecord& rec : logs) {
    EXPECT_TRUE(rec.anomalous);
    EXPECT_FALSE(rec.text.empty());
    const TemplateKind kind = f.catalog.at(rec.true_template).kind;
    EXPECT_TRUE(kind == TemplateKind::kPrecursor ||
                kind == TemplateKind::kError);
  }
}

TEST(AnomalyEmitter, TemplatesMatchFaultCategory) {
  Fixture f;
  AnomalyEmitterConfig config;
  Rng rng(2);
  const auto logs = emit_fault_logs(f.schedule.faults, f.ticketing.tickets,
                                    f.catalog, config, rng);
  // Build vPE → fault-categories map; every emitted template's category
  // must be one of that vPE's fault categories.
  std::map<int, std::map<TicketCategory, int>> vpe_categories;
  for (const FaultEvent& fault : f.schedule.faults) {
    ++vpe_categories[fault.vpe][fault.category];
  }
  for (const RawLogRecord& rec : logs) {
    const TicketCategory category = f.catalog.at(rec.true_template).category;
    EXPECT_GT(vpe_categories[rec.vpe][category], 0)
        << "vPE " << rec.vpe << " never had a "
        << to_string(category) << " fault";
  }
}

TEST(AnomalyEmitter, PrecursorRatesTrackConfig) {
  Fixture f(50, 30);  // larger fleet → tighter rate estimates
  AnomalyEmitterConfig config;
  Rng rng(3);
  const auto logs = emit_fault_logs(f.schedule.faults, f.ticketing.tickets,
                                    f.catalog, config, rng);

  // Index primary tickets.
  std::map<std::int64_t, const Ticket*> primary;
  for (const Ticket& t : f.ticketing.tickets) {
    if (t.fault_id >= 0 && t.category != TicketCategory::kDuplicate) {
      primary[t.fault_id] = &t;
    }
  }
  // For each fault, check whether a precursor log exists before report.
  std::map<TicketCategory, std::pair<int, int>> stats;  // {with_pre, total}
  for (const FaultEvent& fault : f.schedule.faults) {
    const Ticket* ticket = primary[fault.fault_id];
    bool has_precursor = false;
    for (const RawLogRecord& rec : logs) {
      if (rec.vpe != fault.vpe) continue;
      if (f.catalog.at(rec.true_template).kind != TemplateKind::kPrecursor) {
        continue;
      }
      if (f.catalog.at(rec.true_template).category != fault.category) {
        continue;
      }
      // Narrow attribution window: the lead-time distribution has median
      // ~10 minutes, so 2 h captures essentially all genuine bursts while
      // keeping bursts of *neighbouring* faults out of the count.
      if (rec.time < ticket->report &&
          rec.time >= ticket->report - Duration::of_hours(2)) {
        has_precursor = true;
        break;
      }
    }
    auto& [with_pre, total] = stats[fault.category];
    with_pre += has_precursor ? 1 : 0;
    ++total;
  }
  // Expected emission = (1 − p_silent) × p_precursor; the configured
  // values are calibrated so the downstream *detected* rates land on the
  // paper's Fig. 8 numbers (see AnomalyEmitterConfig).
  AnomalyEmitterConfig reference;
  const auto circuit = stats[TicketCategory::kCircuit];
  const auto hardware = stats[TicketCategory::kHardware];
  ASSERT_GT(circuit.second, 20);
  ASSERT_GT(hardware.second, 20);
  const double circuit_rate =
      static_cast<double>(circuit.first) / circuit.second;
  const double hardware_rate =
      static_cast<double>(hardware.first) / hardware.second;
  const auto expected = [&](const CategoryTiming& timing) {
    return (1.0 - timing.p_silent) * timing.p_precursor;
  };
  EXPECT_NEAR(circuit_rate, expected(reference.circuit), 0.15);
  EXPECT_NEAR(hardware_rate, expected(reference.hardware), 0.18);
  EXPECT_GT(circuit_rate, hardware_rate);
}

TEST(AnomalyEmitter, BurstsAreTightClusters) {
  Fixture f;
  AnomalyEmitterConfig config;
  Rng rng(4);
  auto logs = emit_fault_logs(f.schedule.faults, f.ticketing.tickets,
                              f.catalog, config, rng);
  std::sort(logs.begin(), logs.end(),
            [](const RawLogRecord& a, const RawLogRecord& b) {
              return a.time < b.time;
            });
  // The paper observes matched anomalies come ≥2 at a time, <1 min apart
  // on average: consecutive same-vPE anomaly gaps should often be tiny.
  std::map<int, SimTime> last_by_vpe;
  std::size_t small_gaps = 0;
  std::size_t gaps = 0;
  for (const RawLogRecord& rec : logs) {
    const auto it = last_by_vpe.find(rec.vpe);
    if (it != last_by_vpe.end()) {
      ++gaps;
      if (rec.time - it->second <= Duration::of_minutes(1)) ++small_gaps;
    }
    last_by_vpe[rec.vpe] = rec.time;
  }
  ASSERT_GT(gaps, 100u);
  // Burst logs sit seconds apart; infected-period chatter is ~25 min
  // apart, so a meaningful share (not all) of gaps are sub-minute.
  EXPECT_GT(static_cast<double>(small_gaps) / gaps, 0.15);
}

TEST(AnomalyEmitter, InfectedPeriodChatterStopsAtRepair) {
  Fixture f;
  AnomalyEmitterConfig config;
  Rng rng(5);
  const auto logs = emit_fault_logs(f.schedule.faults, f.ticketing.tickets,
                                    f.catalog, config, rng);
  // Error-kind logs must not appear long after every fault on the vPE has
  // cleared. Track per-vPE last repair time.
  std::map<int, SimTime> last_clear;
  for (const FaultEvent& fault : f.schedule.faults) {
    auto& t = last_clear[fault.vpe];
    t = std::max(t, fault.cleared);
  }
  for (const RawLogRecord& rec : logs) {
    if (f.catalog.at(rec.true_template).kind == TemplateKind::kError) {
      EXPECT_LE(rec.time.seconds,
                (last_clear[rec.vpe] + Duration::of_hours(1)).seconds);
    }
  }
}

TEST(AnomalyEmitter, MissingPrimaryTicketThrows) {
  Fixture f;
  AnomalyEmitterConfig config;
  Rng rng(6);
  std::vector<Ticket> no_tickets;
  EXPECT_THROW(emit_fault_logs(f.schedule.faults, no_tickets, f.catalog,
                               config, rng),
               nfv::util::CheckError);
}

TEST(AnomalyEmitterConfig, TimingLookup) {
  AnomalyEmitterConfig config;
  EXPECT_DOUBLE_EQ(config.timing(TicketCategory::kCircuit).p_precursor,
                   config.circuit.p_precursor);
  EXPECT_DOUBLE_EQ(config.timing(TicketCategory::kHardware).p_precursor,
                   config.hardware.p_precursor);
  EXPECT_DOUBLE_EQ(config.timing(TicketCategory::kCable).p_precursor,
                   config.cable.p_precursor);
  EXPECT_DOUBLE_EQ(config.timing(TicketCategory::kSoftware).p_precursor,
                   config.software.p_precursor);
  // Emission ordering mirrors the paper's detection ordering.
  EXPECT_GT(config.circuit.p_precursor, config.cable.p_precursor);
  EXPECT_GT(config.software.p_precursor, config.hardware.p_precursor);
  // Physical-layer causes are silent at the VNF layer most often.
  EXPECT_GT(config.cable.p_silent, config.circuit.p_silent);
  EXPECT_GT(config.hardware.p_silent, config.software.p_silent);
}

TEST(AnomalyEmitter, NearMissBurstsHaveNoTickets) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  AnomalyEmitterConfig config;
  config.near_miss_rate_per_day = 0.5;
  Rng rng(9);
  const auto logs = emit_near_miss_logs(4, SimTime{60LL * 86400}, catalog,
                                        config, rng);
  // ~0.5/day × 4 vPEs × 60 days = ~120 bursts of ≥2 logs.
  EXPECT_GT(logs.size(), 120u);
  for (const RawLogRecord& rec : logs) {
    EXPECT_TRUE(rec.anomalous);
    EXPECT_EQ(catalog.at(rec.true_template).kind, TemplateKind::kPrecursor);
    EXPECT_GE(rec.vpe, 0);
    EXPECT_LT(rec.vpe, 4);
  }
}

TEST(AnomalyEmitter, NearMissDisabledByZeroRate) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  AnomalyEmitterConfig config;
  config.near_miss_rate_per_day = 0.0;
  Rng rng(9);
  EXPECT_TRUE(emit_near_miss_logs(4, SimTime{60LL * 86400}, catalog, config,
                                  rng)
                  .empty());
}

TEST(AnomalyEmitter, SilentFaultsEmitNothing) {
  Fixture f;
  AnomalyEmitterConfig config;
  config.circuit.p_silent = 1.0;
  config.cable.p_silent = 1.0;
  config.hardware.p_silent = 1.0;
  config.software.p_silent = 1.0;
  Rng rng(10);
  const auto logs = emit_fault_logs(f.schedule.faults, f.ticketing.tickets,
                                    f.catalog, config, rng);
  EXPECT_TRUE(logs.empty());
}

}  // namespace
}  // namespace nfv::simnet
