#include "simnet/template_catalog.h"

#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/strings.h"

namespace nfv::simnet {
namespace {

TEST(TemplateCatalog, StandardCatalogIsSubstantial) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  EXPECT_GE(catalog.size(), 80u);
}

TEST(TemplateCatalog, IdsAreDense) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog.all()[i].id, static_cast<std::int32_t>(i));
  }
}

TEST(TemplateCatalog, NamesAreUnique) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  std::set<std::string> names;
  for (const LogTemplate& t : catalog.all()) {
    EXPECT_TRUE(names.insert(t.name).second) << "duplicate name " << t.name;
  }
}

TEST(TemplateCatalog, EveryKindRepresented) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  EXPECT_GE(catalog.ids_of_kind(TemplateKind::kNormal).size(), 25u);
  EXPECT_GE(catalog.ids_of_kind(TemplateKind::kMaintenance).size(), 4u);
  EXPECT_GE(catalog.ids_of_kind(TemplateKind::kPostUpdate).size(), 5u);
  EXPECT_GE(catalog.ids_of_kind(TemplateKind::kBenignRare).size(), 5u);
}

TEST(TemplateCatalog, EveryFaultCategoryHasPrecursorsAndErrors) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  for (const TicketCategory category :
       {TicketCategory::kCircuit, TicketCategory::kCable,
        TicketCategory::kHardware, TicketCategory::kSoftware}) {
    EXPECT_GE(catalog.fault_ids(TemplateKind::kPrecursor, category).size(),
              2u)
        << to_string(category);
    EXPECT_GE(catalog.fault_ids(TemplateKind::kError, category).size(), 2u)
        << to_string(category);
  }
}

TEST(TemplateCatalog, PaperSignaturesPresent) {
  // The two operational signatures called out in §5.3.
  const TemplateCatalog catalog = TemplateCatalog::standard();
  bool found_aspath = false;
  bool found_chassis = false;
  for (const LogTemplate& t : catalog.all()) {
    found_aspath = found_aspath ||
                   t.pattern.find("BGP UNUSABLE ASPATH") != std::string::npos;
    found_chassis =
        found_chassis ||
        t.pattern.find("invalid response from peer chassis-control") !=
            std::string::npos;
  }
  EXPECT_TRUE(found_aspath);
  EXPECT_TRUE(found_chassis);
}

TEST(TemplateCatalog, RenderFillsAllPlaceholders) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  nfv::util::Rng rng(77);
  for (const LogTemplate& t : catalog.all()) {
    const std::string rendered = catalog.render(t.id, rng);
    EXPECT_EQ(rendered.find('{'), std::string::npos)
        << t.name << " rendered: " << rendered;
    EXPECT_FALSE(rendered.empty());
  }
}

TEST(TemplateCatalog, RenderIsRandomized) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  nfv::util::Rng rng(78);
  // A template with variable fields renders differently across draws.
  const auto normal_ids = catalog.ids_of_kind(TemplateKind::kNormal);
  const std::string a = catalog.render(normal_ids[0], rng);
  const std::string b = catalog.render(normal_ids[0], rng);
  EXPECT_NE(a, b);
}

TEST(TemplateCatalog, AtRejectsBadIds) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  EXPECT_THROW(catalog.at(-1), nfv::util::CheckError);
  EXPECT_THROW(catalog.at(static_cast<std::int32_t>(catalog.size())),
               nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::simnet
