#include "simnet/types.h"

#include <gtest/gtest.h>

namespace nfv::simnet {
namespace {

TEST(TicketCategory, ToStringCoversAll) {
  EXPECT_STREQ(to_string(TicketCategory::kMaintenance), "Maintenance");
  EXPECT_STREQ(to_string(TicketCategory::kCircuit), "Circuit");
  EXPECT_STREQ(to_string(TicketCategory::kCable), "Cable");
  EXPECT_STREQ(to_string(TicketCategory::kHardware), "Hardware");
  EXPECT_STREQ(to_string(TicketCategory::kSoftware), "Software");
  EXPECT_STREQ(to_string(TicketCategory::kDuplicate), "Duplicate");
}

TEST(TicketCategory, PrimaryClassification) {
  EXPECT_TRUE(is_primary(TicketCategory::kCircuit));
  EXPECT_TRUE(is_primary(TicketCategory::kCable));
  EXPECT_TRUE(is_primary(TicketCategory::kHardware));
  EXPECT_TRUE(is_primary(TicketCategory::kSoftware));
  EXPECT_FALSE(is_primary(TicketCategory::kDuplicate));
  EXPECT_FALSE(is_primary(TicketCategory::kMaintenance));
}

TEST(TicketCategory, CountConstant) {
  EXPECT_EQ(kTicketCategoryCount, 6u);
}

}  // namespace
}  // namespace nfv::simnet
