#include "simnet/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/check.h"

namespace nfv::simnet {
namespace {

using nfv::util::Duration;
using nfv::util::Rng;
using nfv::util::SimTime;

std::vector<VpeProfile> profiles(int n = 10) {
  const TemplateCatalog catalog = TemplateCatalog::standard();
  FleetProfileConfig config;
  config.num_vpes = n;
  config.num_clusters = 2;
  config.num_outliers = 1;
  Rng rng(31);
  return make_fleet_profiles(catalog, config, rng);
}

TEST(FaultInjector, SortedAndWithinHorizon) {
  const auto p = profiles();
  FaultInjectorConfig config;
  Rng rng(1);
  const SimTime horizon{18LL * 30 * 86400};
  const FaultSchedule schedule = inject_faults(p, horizon, config, rng);
  ASSERT_FALSE(schedule.faults.empty());
  EXPECT_TRUE(std::is_sorted(schedule.faults.begin(), schedule.faults.end(),
                             [](const FaultEvent& a, const FaultEvent& b) {
                               return a.onset < b.onset;
                             }));
  for (const FaultEvent& f : schedule.faults) {
    EXPECT_GE(f.onset, SimTime::epoch());
    EXPECT_LT(f.onset, horizon);
    EXPECT_GE(f.vpe, 0);
    EXPECT_LT(f.vpe, 10);
  }
}

TEST(FaultInjector, UniqueFaultIds) {
  const auto p = profiles();
  FaultInjectorConfig config;
  Rng rng(2);
  const FaultSchedule schedule =
      inject_faults(p, SimTime{18LL * 30 * 86400}, config, rng);
  std::map<std::int64_t, int> ids;
  for (const FaultEvent& f : schedule.faults) ++ids[f.fault_id];
  for (const auto& [id, count] : ids) EXPECT_EQ(count, 1) << id;
}

TEST(FaultInjector, MinimumSpacingPerVpe) {
  const auto p = profiles();
  FaultInjectorConfig config;
  Rng rng(3);
  const FaultSchedule schedule =
      inject_faults(p, SimTime{18LL * 30 * 86400}, config, rng);
  std::map<int, SimTime> last_per_vpe;
  for (const FaultEvent& f : schedule.faults) {
    if (f.fleet_wide) continue;  // correlated events are exempt
    const auto it = last_per_vpe.find(f.vpe);
    if (it != last_per_vpe.end()) {
      EXPECT_GE((f.onset - it->second).seconds, config.min_fault_gap.seconds)
          << "vPE " << f.vpe;
    }
    last_per_vpe[f.vpe] = f.onset;
  }
}

TEST(FaultInjector, CategoryMixRoughlyMatchesConfig) {
  const auto p = profiles(30);
  FaultInjectorConfig config;
  Rng rng(4);
  const FaultSchedule schedule =
      inject_faults(p, SimTime{18LL * 30 * 86400}, config, rng);
  std::map<TicketCategory, int> counts;
  int total = 0;
  for (const FaultEvent& f : schedule.faults) {
    if (f.fleet_wide) continue;
    ++counts[f.category];
    ++total;
  }
  ASSERT_GT(total, 100);
  EXPECT_NEAR(static_cast<double>(counts[TicketCategory::kCircuit]) / total,
              config.p_circuit, 0.1);
  EXPECT_NEAR(static_cast<double>(counts[TicketCategory::kSoftware]) / total,
              config.p_software, 0.1);
}

TEST(FaultInjector, FleetWideEventsHitManyVpesAtOnce) {
  const auto p = profiles(20);
  FaultInjectorConfig config;
  config.fleet_wide_events = 2;
  config.fleet_wide_fraction = 0.5;
  Rng rng(5);
  const FaultSchedule schedule =
      inject_faults(p, SimTime{18LL * 30 * 86400}, config, rng);
  std::vector<const FaultEvent*> fleet_wide;
  for (const FaultEvent& f : schedule.faults) {
    if (f.fleet_wide) fleet_wide.push_back(&f);
  }
  // Each event hits ~10 vPEs; they share (almost) the same onset.
  EXPECT_GE(fleet_wide.size(), 10u);
  for (const FaultEvent* f : fleet_wide) {
    EXPECT_EQ(f->category, TicketCategory::kCircuit);
  }
}

TEST(FaultInjector, FaultRateScalesWithProfile) {
  // Heavy-tailed renewal counts are extremely noisy per vPE; aggregate
  // several independent seeds before comparing rates.
  auto p = profiles(2);
  p[0].fault_rate_scale = 0.2;
  p[1].fault_rate_scale = 5.0;
  FaultInjectorConfig config;
  config.fleet_wide_events = 0;
  config.p_secondary = 0.0;
  int count0 = 0;
  int count1 = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(600 + seed);
    const FaultSchedule schedule =
        inject_faults(p, SimTime{36LL * 30 * 86400}, config, rng);
    for (const FaultEvent& f : schedule.faults) {
      (f.vpe == 0 ? count0 : count1)++;
    }
  }
  EXPECT_GT(count1, 2 * count0);
}

TEST(FaultInjector, MaintenanceScheduledForEveryVpe) {
  const auto p = profiles();
  FaultInjectorConfig config;
  Rng rng(7);
  const FaultSchedule schedule =
      inject_faults(p, SimTime{18LL * 30 * 86400}, config, rng);
  std::map<int, int> windows_per_vpe;
  for (const MaintenanceWindow& w : schedule.maintenance) {
    ++windows_per_vpe[w.vpe];
    EXPECT_GE(w.length.seconds, 3600);
    EXPECT_LE(w.length.seconds, 4 * 3600);
  }
  for (int v = 0; v < 10; ++v) {
    // ~4-5 windows expected over 18 months at a 65-day campaign cadence
    // with 55% coverage.
    EXPECT_GE(windows_per_vpe[v], 1) << "vPE " << v;
    EXPECT_LE(windows_per_vpe[v], 12) << "vPE " << v;
  }
}

TEST(FaultInjector, RejectsBadInputs) {
  FaultInjectorConfig config;
  Rng rng(8);
  EXPECT_THROW(inject_faults({}, SimTime{100}, config, rng),
               nfv::util::CheckError);
  const auto p = profiles(2);
  EXPECT_THROW(inject_faults(p, SimTime::epoch(), config, rng),
               nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::simnet
