// Figure 7: effectiveness of model customization and fast adaptation —
// F-measure across the 18-month window for (a) a single global model,
// (b) per-cluster customized models, (c) customization + transfer-learning
// adaptation after the software update.
//
// Paper findings: customization lifts F substantially; without adaptation
// the software update multiplies false alarms ~14× and recovery takes
// months, while the adaptation variant recovers with 1 week of data.
#include "bench/bench_common.h"

int main() {
  using namespace nfv;
  bench::print_header(
      "Figure 7 — baseline vs customization vs customization+adaptation",
      "customization raises F; update spikes false alarms ~14x without "
      "adaptation; 1-week transfer learning recovers quickly");

  const auto fleet = bench::make_bench_fleet();

  struct Variant {
    const char* name;
    bool customize;
    bool adapt;
    core::PipelineResult result;
  };
  std::vector<Variant> variants{
      {"baseline (single model)", false, false, {}},
      {"vPE cust", true, false, {}},
      {"vPE cust + adapt", true, true, {}},
  };

  for (Variant& variant : variants) {
    core::PipelineOptions options = bench::bench_pipeline_options();
    options.customize = variant.customize;
    options.adapt = variant.adapt;
    std::cerr << "[bench] running variant '" << variant.name << "'...\n";
    variant.result = core::run_pipeline(fleet.trace, fleet.parsed, options);
  }

  util::Table f_table({"month", "baseline_F", "cust_F", "cust+adapt_F"},
                      "monthly F-measure (paper Fig. 7 series)");
  util::Table fa_table({"month", "baseline_FA/d", "cust_FA/d",
                        "cust+adapt_FA/d"},
                       "monthly false alarms per day");
  const std::size_t months = variants[0].result.monthly.size();
  for (std::size_t i = 0; i < months; ++i) {
    std::vector<std::string> f_row{
        std::to_string(variants[0].result.monthly[i].month)};
    std::vector<std::string> fa_row = f_row;
    for (const Variant& variant : variants) {
      f_row.push_back(
          util::fmt_double(variant.result.monthly[i].prf.f_measure, 3));
      fa_row.push_back(util::fmt_double(
          variant.result.monthly[i].false_alarms_per_day, 2));
    }
    f_table.add_row(f_row);
    fa_table.add_row(fa_row);
  }
  f_table.print(std::cout);
  std::cout << "\n";
  fa_table.print(std::cout);

  // Update-month false-alarm spike factors.
  const int update_month = fleet.trace.config.update_month;
  std::cout << "\nupdate month: " << update_month << "\n";
  for (const Variant& variant : variants) {
    double steady = 0.0;
    int steady_n = 0;
    double spike = 0.0;
    for (const auto& m : variant.result.monthly) {
      if (m.month < update_month) {
        steady += m.false_alarms_per_day;
        ++steady_n;
      }
      if (m.month == update_month) spike = m.false_alarms_per_day;
    }
    steady = steady_n ? steady / steady_n : 0.0;
    std::cout << "  " << variant.name << ": steady FA/d="
              << util::fmt_double(steady, 2)
              << ", update-month FA/d=" << util::fmt_double(spike, 2)
              << ", spike factor="
              << util::fmt_double(steady > 0 ? spike / steady : 0.0, 1)
              << "  (paper: ~14x without adaptation)\n";
  }

  // Mean F per era.
  std::cout << "\nmean F-measure:\n";
  for (const Variant& variant : variants) {
    double pre = 0.0;
    int pre_n = 0;
    double post = 0.0;
    int post_n = 0;
    for (const auto& m : variant.result.monthly) {
      if (m.month < update_month) {
        pre += m.prf.f_measure;
        ++pre_n;
      } else {
        post += m.prf.f_measure;
        ++post_n;
      }
    }
    std::cout << "  " << variant.name << ": pre-update "
              << util::fmt_double(pre_n ? pre / pre_n : 0.0, 3)
              << ", from update on "
              << util::fmt_double(post_n ? post / post_n : 0.0, 3) << "\n";
  }
  return 0;
}
