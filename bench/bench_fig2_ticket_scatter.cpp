// Figure 2: non-maintenance trouble tickets across time and vPEs.
//
// Paper findings: the ticket pattern is non-periodic and vPE-dependent —
// a few vPEs have more tickets than others; occasionally multiple vPEs
// fault in the same interval (core-router events), but such fleet-wide
// cases are rare.
#include "bench/bench_common.h"

#include <algorithm>
#include <map>

int main() {
  using namespace nfv;
  bench::print_header(
      "Figure 2 — tickets across time and vPEs (non-maintenance)",
      "skewed per-vPE volume; rare fleet-wide correlated events");

  auto config = bench::standard_config();
  config.syslog.gap_scale = 50.0;
  const auto trace = simnet::simulate_fleet(config);

  // Per-vPE non-maintenance ticket counts, sorted descending.
  std::map<int, int> per_vpe;
  for (const simnet::Ticket& t : trace.tickets) {
    if (t.category == simnet::TicketCategory::kMaintenance) continue;
    ++per_vpe[t.vpe];
  }
  std::vector<std::pair<int, int>> sorted(per_vpe.begin(), per_vpe.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  util::Table table({"rank", "vpe", "tickets"},
                    "per-vPE non-maintenance ticket volume (sorted)");
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    table.add_row({std::to_string(i), std::to_string(sorted[i].first),
                   std::to_string(sorted[i].second)});
  }
  table.print(std::cout);

  const double top5 =
      static_cast<double>(sorted[0].second + sorted[1].second +
                          sorted[2].second + sorted[3].second +
                          sorted[4].second);
  double total = 0;
  for (const auto& [vpe, count] : sorted) total += count;
  std::cout << "\nskew: top-5 vPEs carry "
            << util::fmt_double(100.0 * top5 / total, 1)
            << "% of non-maintenance tickets (paper: 'a few vPEs has more "
               "tickets than others')\n";

  // Fleet-wide coincidences: 1-hour intervals where ≥ 25% of vPEs ticket.
  std::map<std::int64_t, std::map<int, int>> interval_vpes;
  for (const simnet::Ticket& t : trace.tickets) {
    if (t.category == simnet::TicketCategory::kMaintenance) continue;
    ++interval_vpes[t.report.seconds / 3600][t.vpe];
  }
  int coincident_intervals = 0;
  for (const auto& [hour, vpes] : interval_vpes) {
    if (vpes.size() >=
        static_cast<std::size_t>(trace.num_vpes()) / 4) {
      ++coincident_intervals;
    }
  }
  std::cout << "fleet-wide events: " << coincident_intervals
            << " one-hour intervals with >=25% of vPEs ticketing "
            << "(simulator injected "
            << trace.config.faults.fleet_wide_events
            << "; paper: 'very rare')\n";
  return 0;
}
