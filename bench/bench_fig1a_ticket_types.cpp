// Figure 1(a): percentage of ticket root-cause types over time (monthly).
//
// Paper finding: maintenance is the dominant factor; duplicated and
// circuit tickets are the next two major contributors; the ticket data is
// highly skewed.
#include "bench/bench_common.h"

#include "util/sim_time.h"

int main() {
  using namespace nfv;
  bench::print_header(
      "Figure 1(a) — ticket type shares over time (monthly)",
      "maintenance dominant; Duplicate and Circuit the next two "
      "contributors");

  auto config = bench::standard_config();
  config.syslog.gap_scale = 50.0;  // ticket analysis doesn't need the logs
  const auto trace = simnet::simulate_fleet(config);

  const simnet::TicketCategory categories[] = {
      simnet::TicketCategory::kMaintenance, simnet::TicketCategory::kCircuit,
      simnet::TicketCategory::kCable, simnet::TicketCategory::kHardware,
      simnet::TicketCategory::kSoftware, simnet::TicketCategory::kDuplicate};

  // Monthly type shares (cumulative counts normalized per month).
  util::Table table({"month", "Maint", "Circuit", "Cable", "Hardware",
                     "Software", "DUP", "total"});
  std::vector<std::size_t> overall(6, 0);
  for (int m = 0; m < trace.config.months; ++m) {
    std::vector<std::size_t> counts(6, 0);
    std::size_t total = 0;
    for (const simnet::Ticket& t : trace.tickets) {
      if (util::month_of(t.report) != m) continue;
      for (std::size_t c = 0; c < 6; ++c) {
        if (t.category == categories[c]) {
          ++counts[c];
          ++overall[c];
        }
      }
      ++total;
    }
    std::vector<std::string> row{std::to_string(m)};
    for (std::size_t c = 0; c < 6; ++c) {
      row.push_back(util::fmt_double(
          total ? 100.0 * static_cast<double>(counts[c]) /
                      static_cast<double>(total)
                : 0.0,
          1));
    }
    row.push_back(std::to_string(total));
    table.add_row(row);
  }
  table.print(std::cout);

  std::size_t total = 0;
  for (std::size_t c : overall) total += c;
  util::Table summary({"category", "share_%", "rank_note"},
                      "overall shares (18 months, all vPEs)");
  const char* names[] = {"Maintenance", "Circuit", "Cable",
                         "Hardware",    "Software", "Duplicate"};
  for (std::size_t c = 0; c < 6; ++c) {
    summary.add_row(
        {names[c],
         util::fmt_double(100.0 * static_cast<double>(overall[c]) /
                              static_cast<double>(total),
                          1),
         c == 0 ? "paper: dominant" : (c == 1 || c == 5 ? "paper: next two" : "")});
  }
  summary.print(std::cout);
  return 0;
}
