// §3.3 "Impact of System Updates": cosine similarity of each vPE's syslog
// distribution between consecutive months.
//
// Paper findings: before a system update the month-over-month similarity
// is always above 0.8; upon the update it drops below 0.4 — models must
// be refreshed from short data windows.
#include "bench/bench_common.h"

#include "logproc/dataset.h"
#include "util/stats.h"

int main() {
  using namespace nfv;
  bench::print_header(
      "§3.3 — month-over-month syslog distribution shift at the update",
      "similarity > 0.8 in steady state; < 0.4 at the system update");

  const auto fleet = bench::make_bench_fleet();
  const auto& trace = fleet.trace;
  const auto& parsed = fleet.parsed;
  const std::size_t vocab = parsed.vocab();
  const auto n = static_cast<std::size_t>(trace.num_vpes());

  std::vector<std::vector<logproc::ParsedLog>> clean(n);
  for (std::size_t v = 0; v < n; ++v) {
    clean[v] = logproc::exclude_intervals(
        parsed.logs_by_vpe[v],
        core::ticket_exclusion_windows(trace, static_cast<std::int32_t>(v)));
  }

  // Month-over-month similarity per vPE; aggregate separately for vPEs
  // whose update lands between the two months vs all the rest.
  util::Table table(
      {"month_pair", "updated_vpes_mean", "updated_min", "others_mean",
       "others_min"},
      "month-over-month cosine similarity");
  for (int m = 0; m + 1 < trace.config.months; ++m) {
    util::RunningStats updated;
    util::RunningStats others;
    for (std::size_t v = 0; v < n; ++v) {
      const auto d1 = logproc::template_distribution(
          logproc::slice_time(clean[v], util::month_start(m),
                              util::month_start(m + 1)),
          vocab);
      const auto d2 = logproc::template_distribution(
          logproc::slice_time(clean[v], util::month_start(m + 1),
                              util::month_start(m + 2)),
          vocab);
      const double sim = util::cosine_similarity(d1, d2);
      const auto update_time = trace.update_time_by_vpe[v];
      const bool update_between =
          update_time >= util::month_start(m) &&
          update_time < util::month_start(m + 2);
      (update_between ? updated : others).add(sim);
    }
    std::vector<std::string> row{std::to_string(m) + "->" +
                                 std::to_string(m + 1)};
    if (updated.count() > 0) {
      row.push_back(util::fmt_double(updated.mean(), 3));
      row.push_back(util::fmt_double(updated.min(), 3));
    } else {
      row.push_back("-");
      row.push_back("-");
    }
    row.push_back(util::fmt_double(others.mean(), 3));
    row.push_back(util::fmt_double(others.min(), 3));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n(update rollout begins in month "
            << trace.config.update_month << ")\n";

  // Calendar months blend pre- and post-update data because the rollout is
  // staggered; align the windows on each vPE's own update instant to see
  // the raw severity of the shift (the paper's <0.4 observation).
  util::RunningStats aligned;
  for (std::size_t v = 0; v < n; ++v) {
    const auto update_time = trace.update_time_by_vpe[v];
    if (update_time == simnet::never()) continue;
    const auto before = logproc::template_distribution(
        logproc::slice_time(clean[v],
                            update_time - util::Duration::of_days(30),
                            update_time),
        vocab);
    const auto after = logproc::template_distribution(
        logproc::slice_time(clean[v], update_time,
                            update_time + util::Duration::of_days(30)),
        vocab);
    aligned.add(util::cosine_similarity(before, after));
  }
  std::cout << "\naligned 30d-before vs 30d-after update similarity over "
            << aligned.count() << " updated vPEs: mean "
            << util::fmt_double(aligned.mean(), 3) << ", min "
            << util::fmt_double(aligned.min(), 3) << ", max "
            << util::fmt_double(aligned.max(), 3)
            << "  (paper: drops below 0.4)\n";
  return 0;
}
