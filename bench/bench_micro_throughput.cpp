// Micro-benchmarks (google-benchmark) for the hot paths: signature-tree
// template mining, LSTM training/scoring, TF-IDF features, K-means and
// OC-SVM fitting. These size the system ("<1 hour for monthly model
// update", §5.1) rather than reproduce a figure.
#include <benchmark/benchmark.h>

#include "core/lstm_detector.h"
#include "logproc/dataset.h"
#include "logproc/signature_tree.h"
#include "ml/kmeans.h"
#include "ml/ocsvm.h"
#include "simnet/template_catalog.h"
#include "util/rng.h"

namespace {

using namespace nfv;

std::vector<std::string> sample_lines(std::size_t count) {
  const auto catalog = simnet::TemplateCatalog::standard();
  util::Rng rng(1);
  std::vector<std::string> lines;
  lines.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    lines.push_back(catalog.render(
        static_cast<std::int32_t>(rng.uniform_index(catalog.size())), rng));
  }
  return lines;
}

void BM_SignatureTreeLearn(benchmark::State& state) {
  const auto lines = sample_lines(4096);
  for (auto _ : state) {
    logproc::SignatureTree tree;
    for (const auto& line : lines) {
      benchmark::DoNotOptimize(tree.learn(line));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_SignatureTreeLearn);

void BM_SignatureTreeMatch(benchmark::State& state) {
  const auto lines = sample_lines(4096);
  logproc::SignatureTree tree;
  for (const auto& line : lines) tree.learn(line);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.match(lines[i++ % lines.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SignatureTreeMatch);

std::vector<logproc::ParsedLog> sample_logs(std::size_t count) {
  util::Rng rng(2);
  std::vector<logproc::ParsedLog> logs;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += static_cast<std::int64_t>(rng.exponential(60.0)) + 1;
    logs.push_back({util::SimTime{t},
                    static_cast<std::int32_t>(rng.uniform_index(64))});
  }
  return logs;
}

void BM_LstmTrainEpoch(benchmark::State& state) {
  const auto logs = sample_logs(2000);
  for (auto _ : state) {
    core::LstmDetectorConfig config;
    config.initial_epochs = 1;
    config.oversample = false;
    core::LstmDetector detector(config);
    const core::LogView view{logs};
    detector.fit({&view, 1}, 64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(logs.size()));
}
BENCHMARK(BM_LstmTrainEpoch)->Unit(benchmark::kMillisecond);

void BM_LstmScore(benchmark::State& state) {
  const auto logs = sample_logs(2000);
  core::LstmDetectorConfig config;
  config.initial_epochs = 1;
  config.oversample = false;
  core::LstmDetector detector(config);
  const core::LogView view{logs};
  detector.fit({&view, 1}, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(logs, 64));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(logs.size()));
}
BENCHMARK(BM_LstmScore)->Unit(benchmark::kMillisecond);

void BM_TfidfTransform(benchmark::State& state) {
  const auto logs = sample_logs(4000);
  const auto docs = logproc::build_documents(logs, 20);
  logproc::TfidfFeaturizer featurizer;
  featurizer.fit(docs, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.transform(docs[i++ % docs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TfidfTransform);

void BM_KMeansFleet(benchmark::State& state) {
  util::Rng data_rng(3);
  ml::Matrix data(38, 128);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(data_rng.uniform(0.0, 1.0));
  }
  for (auto _ : state) {
    util::Rng rng(4);
    ml::KMeansConfig config;
    config.k = 4;
    benchmark::DoNotOptimize(ml::kmeans(data, config, rng));
  }
}
BENCHMARK(BM_KMeansFleet);

void BM_OcSvmFit(benchmark::State& state) {
  util::Rng rng(5);
  ml::Matrix data(static_cast<std::size_t>(state.range(0)), 32);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  for (auto _ : state) {
    ml::OcSvm svm;
    svm.fit(data);
    benchmark::DoNotOptimize(svm.rho());
  }
}
BENCHMARK(BM_OcSvmFit)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
