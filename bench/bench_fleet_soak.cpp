// Fleet-scale soak: simnet-driven syslog through the async ingest runtime
// at 1k / 10k vPEs on one box.
//
// The paper validates on 38 vPEs (§2); the production target is a box
// multiplexing thousands of monitors, where per-vPE MEMORY — not per-line
// CPU — is the scaling wall. Every shard mines raw rendered syslog from
// the shared simnet TemplateCatalog, so the fleet token set AND
// template set overlap almost completely across vPEs: exactly the
// workload the shared token arena (util::SharedInterner) and the shared
// signature forest (logproc::SharedSignatureForest, cross-vPE template
// dedup with copy-on-write divergence) exist for. This bench measures,
// per {vpes, sharing tier, quantize, stagger} configuration:
//   - sustained lines/sec over the submit -> flush soak window,
//   - bytes/vPE from the runtime's fleet memory stats (arena + forest
//     counted once + per-shard tree bytes) across the three sharing
//     tiers: fully private, shared arena, arena + forest; plus a
//     per-row breakdown (per-vPE tree bytes vs amortized shared bytes
//     vs amortized model bytes). All tiers' rows land in the JSON,
//   - warning latency p50/p99/p999 (ingest -> scored, µs) from the
//     runtime's per-shard histograms, with and without the staggered
//     per-worker flush deadlines (the stagger-off row pins the tail
//     cost of the whole fleet hitting its deadline in phase),
//   - model bytes (fp32 vs --quantize int8 sidecar from the quant tier).
// and proves determinism at scale: per-vPE warning streams are compared
// byte-for-byte against a serial StreamMonitor replay at the FULL vPE
// count for multiple worker counts. Lines are regenerated on demand from
// (template id, vpe, line index) via TemplateCatalog::render_seeded, so
// the serial replay never needs the multi-million-line workload in memory.
//
// Modes:
//   --json FILE   full soak (1k and 10k vPE rows) → BENCH_soak.json
//   --smoke       fast CI gate: small fleet; asserts warning parity with
//                 the serial replay at 2 worker counts AND that each
//                 sharing tier cuts bytes/vPE over the previous one:
//                 arena + forest < shared arena < private baseline
//   --vpes N      replace the default 1k/10k row scales with a single N
//                 (local iteration; acceptance runs use the default)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/async_ingest.h"
#include "core/lstm_detector.h"
#include "logproc/signature_tree.h"
#include "simnet/template_catalog.h"
#include "util/stats.h"

namespace {

using namespace nfv;

constexpr std::size_t kWindow = 4;
constexpr std::int64_t kStepSeconds = 30;

// Two synthetic fault shapes NOT in the catalog: letters-only heads so
// the tokenizer keeps them stable, mined online during the soak onto ids
// >= the model vocabulary (the deterministic unknown-template score
// path). Pairs land 30s apart — inside the 2-minute cluster span.
std::string anomaly_line(std::size_t vpe, std::size_t i) {
  const char* shape = (vpe % 2 == 0) ? "zulufault cascade overload detected"
                                     : "yankeefault thermal runaway shutdown";
  return std::string(shape) + " code " + std::to_string(i);
}

bool is_anomaly_slot(std::size_t i) { return i % 47 == 20 || i % 47 == 21; }

struct Workload {
  simnet::TemplateCatalog catalog;
  std::vector<std::int32_t> stream_ids;  // normal traffic the soak draws on
  core::LstmDetector detector;
  core::LstmDetector detector_quantized;
  double threshold = 0.0;
  std::size_t vocab = 0;
};

/// Mine every catalog template once, in catalog order. All variable
/// fields render digit-bearing (masked to wildcards by the tokenizer), so
/// one pass per template yields a deterministic template set — identical
/// ids in every tree primed this way, which is what aligns mined ids with
/// the detector vocabulary across 10k shards and the serial replay.
void prime_tree(logproc::SignatureTree& tree,
                const simnet::TemplateCatalog& catalog) {
  for (const simnet::LogTemplate& t : catalog.all()) {
    tree.learn(catalog.render_seeded(t.id, 0));
  }
}

std::uint64_t line_salt(std::size_t vpe, std::size_t i) {
  return (static_cast<std::uint64_t>(vpe) << 32) | static_cast<std::uint64_t>(i);
}

/// The catalog template behind normal line i of vPE v (deterministic mix
/// with different phase per vPE).
std::int32_t stream_template(const Workload& w, std::size_t vpe,
                             std::size_t i) {
  const std::size_t n = w.stream_ids.size();
  return w.stream_ids[(i * 7 + vpe * 3 + i / 31) % n];
}

std::string render_line(const Workload& w, std::size_t vpe, std::size_t i) {
  if (is_anomaly_slot(i)) return anomaly_line(vpe, i);
  return w.catalog.render_seeded(stream_template(w, vpe, i),
                                 line_salt(vpe, i));
}

util::SimTime line_time(std::size_t i) {
  return util::SimTime{static_cast<std::int64_t>(i) * kStepSeconds};
}

Workload build_workload() {
  Workload w;
  w.catalog = simnet::TemplateCatalog::standard();
  for (const auto kind :
       {simnet::TemplateKind::kNormal, simnet::TemplateKind::kMaintenance}) {
    for (const std::int32_t id : w.catalog.ids_of_kind(kind)) {
      w.stream_ids.push_back(id);
    }
  }

  logproc::SignatureTree train_tree;
  prime_tree(train_tree, w.catalog);
  w.vocab = train_tree.size();

  // Training streams: the same deterministic normal mix the soak replays
  // (no anomaly slots), mined through an identically-primed tree.
  constexpr std::size_t kTrainVpes = 4;
  constexpr std::size_t kTrainLen = 400;
  std::vector<std::vector<logproc::ParsedLog>> streams(kTrainVpes);
  for (std::size_t v = 0; v < kTrainVpes; ++v) {
    for (std::size_t i = 0; i < kTrainLen; ++i) {
      const std::int32_t tid = stream_template(w, v, i);
      streams[v].push_back(
          {line_time(i),
           train_tree.learn(w.catalog.render_seeded(tid, line_salt(v, i)))});
    }
  }

  core::LstmDetectorConfig config;
  config.window = kWindow;
  config.embed_dim = 8;
  config.hidden = 16;
  config.initial_epochs = 1;
  config.max_train_windows = 1200;
  config.oversample = false;
  config.seed = 20260809;
  w.detector = core::LstmDetector(config);
  std::vector<core::LogView> views(streams.begin(), streams.end());
  w.detector.fit(views, w.vocab);

  std::vector<double> scores;
  for (const auto& stream : streams) {
    for (const core::ScoredEvent& e : w.detector.score(stream, w.vocab)) {
      scores.push_back(e.score);
    }
  }
  w.threshold = util::quantile(scores, 0.995);

  // Same fp32 weights + the int8 sidecar for the --quantize rows.
  w.detector_quantized = w.detector;
  w.detector_quantized.set_quantized(true);
  return w;
}

core::StreamMonitorConfig monitor_config(const Workload& w) {
  core::StreamMonitorConfig config;
  config.threshold = w.threshold;
  config.window = kWindow;
  return config;
}

/// The three sharing tiers under measurement, strictly ordered by how
/// much fleet state is deduped: nothing / token arena / arena + forest.
enum class Sharing { kPrivate, kArena, kForest };

const char* sharing_name(Sharing sharing) {
  switch (sharing) {
    case Sharing::kPrivate: return "private";
    case Sharing::kArena: return "arena";
    case Sharing::kForest: return "arena+forest";
  }
  return "?";
}

struct SoakResult {
  double lines_per_sec = 0.0;
  std::size_t total_lines = 0;
  std::size_t warnings = 0;
  std::vector<core::StreamWarning> merged;  // per-vPE canonical order
  core::FleetMemoryStats memory;
  std::uint64_t model_bytes_fp32 = 0;
  std::uint64_t model_bytes_quantized = 0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_p999_us = 0.0;
};

/// One soak run: prime, start, submit the full fleet interleaved, flush,
/// read the epoch-consistent stats cut, stop, drain.
SoakResult run_soak(const Workload& w, const core::AnomalyDetector& detector,
                    std::size_t vpes, std::size_t lines_per_vpe,
                    std::size_t workers, Sharing sharing, bool stagger) {
  core::AsyncIngestConfig config;
  config.workers = workers;
  config.flush_batch = 64;
  config.flush_deadline = std::chrono::microseconds(2000);
  config.stagger_flush = stagger;
  config.single_producer = true;
  config.share_token_arena = sharing != Sharing::kPrivate;
  config.share_template_forest = sharing == Sharing::kForest;
  core::AsyncIngest ingest(&detector, config);
  for (std::size_t v = 0; v < vpes; ++v) {
    const std::size_t shard =
        ingest.add_shard(static_cast<std::int32_t>(v), monitor_config(w));
    prime_tree(ingest.mutable_tree(shard), w.catalog);
  }
  ingest.start();

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < lines_per_vpe; ++i) {
    for (std::size_t v = 0; v < vpes; ++v) {
      ingest.submit(v, line_time(i), render_line(w, v, i));
    }
  }
  ingest.flush();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  SoakResult r;
  r.total_lines = vpes * lines_per_vpe;
  r.lines_per_sec = static_cast<double>(r.total_lines) / elapsed.count();
  const core::RuntimeStatsSnapshot snap = ingest.snapshot();
  r.memory = snap.memory;
  if (!snap.shards.empty()) {
    r.model_bytes_fp32 = snap.shards[0].model_bytes_fp32;
    r.model_bytes_quantized = snap.shards[0].model_bytes_quantized;
  }
  const core::HistogramSnapshot latency = snap.merged_latency();
  r.latency_p50_us = latency.p50() / 1000.0;
  r.latency_p99_us = latency.p99() / 1000.0;
  r.latency_p999_us = latency.p999() / 1000.0;

  ingest.stop();
  std::vector<core::StreamWarning> drained;
  ingest.drain_warnings(drained);
  r.merged = core::merge_warnings_by_vpe(std::move(drained));
  r.warnings = r.merged.size();
  return r;
}

/// Serial reference at the same fleet size: one monitor at a time (O(1)
/// trees alive, whatever the vPE count), lines regenerated on demand.
std::vector<core::StreamWarning> run_serial(
    const Workload& w, const core::AnomalyDetector& detector,
    std::size_t vpes, std::size_t lines_per_vpe) {
  std::vector<core::StreamWarning> warnings;
  for (std::size_t v = 0; v < vpes; ++v) {
    logproc::SignatureTree tree;
    prime_tree(tree, w.catalog);
    core::StreamMonitor monitor(
        static_cast<std::int32_t>(v), &detector, &tree, monitor_config(w),
        [&warnings](const core::StreamWarning& warning) {
          warnings.push_back(warning);
        });
    for (std::size_t i = 0; i < lines_per_vpe; ++i) {
      monitor.ingest(line_time(i), render_line(w, v, i));
    }
  }
  return warnings;  // per-vPE streams concatenated in ascending vPE order
}

bool same_warnings(const std::vector<core::StreamWarning>& serial,
                   const std::vector<core::StreamWarning>& merged,
                   const std::string& label) {
  if (serial.size() != merged.size()) {
    std::cerr << label << ": warning count " << merged.size() << " != serial "
              << serial.size() << "\n";
    return false;
  }
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const core::StreamWarning& a = serial[i];
    const core::StreamWarning& b = merged[i];
    if (a.vpe != b.vpe || a.time.seconds != b.time.seconds ||
        a.anomaly_count != b.anomaly_count || a.peak_score != b.peak_score ||
        a.trigger_template != b.trigger_template) {
      std::cerr << label << ": warning " << i
                << " diverges from serial replay\n";
      return false;
    }
  }
  return true;
}

struct Row {
  std::size_t vpes = 0;
  std::size_t lines_per_vpe = 0;
  std::size_t workers = 0;
  Sharing sharing = Sharing::kPrivate;
  bool stagger = true;
  bool quantize = false;
  bool parity_checked = false;
  SoakResult result;
};

/// Per-vPE bytes of one component of the row's footprint; shared and
/// model bytes are amortized over the fleet (counted once, divided by
/// the vPE count), mirroring how FleetMemoryStats::bytes_per_vpe is
/// built. Together the three components decompose bytes/vPE + model.
double per_vpe(const Row& row, std::uint64_t fleet_bytes) {
  return static_cast<double>(fleet_bytes) / static_cast<double>(row.vpes);
}

double tree_bytes_per_vpe(const Row& row) {
  return per_vpe(row, row.result.memory.tree_bytes_total);
}

double shared_bytes_per_vpe(const Row& row) {
  return per_vpe(row,
                 row.result.memory.arena_bytes + row.result.memory.forest_bytes);
}

double model_bytes_per_vpe(const Row& row) {
  return per_vpe(row, row.quantize ? row.result.model_bytes_quantized
                                   : row.result.model_bytes_fp32);
}

void write_row(util::JsonWriter& w, const Row& row) {
  w.begin_object();
  w.kv("vpes", row.vpes);
  w.kv("lines_per_vpe", row.lines_per_vpe);
  w.kv("total_lines", row.result.total_lines);
  w.kv("workers", row.workers);
  w.kv("sharing", sharing_name(row.sharing));
  w.kv("stagger_flush", row.stagger);
  w.kv("quantize", row.quantize);
  w.kv("lines_per_sec", row.result.lines_per_sec);
  w.kv("bytes_per_vpe", row.result.memory.bytes_per_vpe);
  // The bytes/vPE breakdown: private tree state vs the amortized shared
  // structures (arena + forest) vs the amortized model.
  w.kv("bytes_per_vpe_tree", tree_bytes_per_vpe(row));
  w.kv("bytes_per_vpe_shared", shared_bytes_per_vpe(row));
  w.kv("bytes_per_vpe_model", model_bytes_per_vpe(row));
  w.kv("arena_bytes", row.result.memory.arena_bytes);
  w.kv("arena_tokens", row.result.memory.arena_tokens);
  w.kv("forest_bytes", row.result.memory.forest_bytes);
  w.kv("forest_templates", row.result.memory.forest_templates);
  w.kv("tree_bytes_total", row.result.memory.tree_bytes_total);
  w.kv("tree_bytes_max", row.result.memory.tree_bytes_max);
  w.kv("model_bytes_fp32", row.result.model_bytes_fp32);
  w.kv("model_bytes_quantized", row.result.model_bytes_quantized);
  w.kv("latency_p50_us", row.result.latency_p50_us);
  w.kv("latency_p99_us", row.result.latency_p99_us);
  w.kv("latency_p999_us", row.result.latency_p999_us);
  w.kv("warnings", row.result.warnings);
  w.kv("serial_parity_checked", row.parity_checked);
  w.end_object();
}

void log_row(const Row& row) {
  std::cerr << "vpes=" << row.vpes << " sharing=" << sharing_name(row.sharing)
            << (row.quantize ? " quantized" : "")
            << (row.stagger ? "" : " stagger=off") << " workers="
            << row.workers << ": " << row.result.lines_per_sec << " lines/s, "
            << row.result.memory.bytes_per_vpe << " bytes/vPE ("
            << tree_bytes_per_vpe(row) << " tree + "
            << shared_bytes_per_vpe(row) << " shared), p99="
            << row.result.latency_p99_us << "us, p999="
            << row.result.latency_p999_us << "us, " << row.result.warnings
            << " warnings\n";
}

int run_smoke() {
  const Workload w = build_workload();
  constexpr std::size_t kVpes = 48;
  constexpr std::size_t kLines = 120;

  const std::vector<core::StreamWarning> serial =
      run_serial(w, w.detector, kVpes, kLines);
  if (serial.empty()) {
    std::cerr << "smoke: serial replay produced no warnings (vacuous)\n";
    return 1;
  }

  // The forest tier must hold warning parity at multiple worker counts —
  // template storage location can never leak into scores.
  SoakResult forest1;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    SoakResult r =
        run_soak(w, w.detector, kVpes, kLines, workers, Sharing::kForest, true);
    if (!same_warnings(serial, r.merged,
                       "arena+forest workers=" + std::to_string(workers))) {
      return 1;
    }
    if (workers == 1) forest1 = std::move(r);
  }
  const SoakResult arena1 =
      run_soak(w, w.detector, kVpes, kLines, 1, Sharing::kArena, true);
  if (!same_warnings(serial, arena1.merged, "shared arena workers=1")) {
    return 1;
  }
  const SoakResult priv =
      run_soak(w, w.detector, kVpes, kLines, 1, Sharing::kPrivate, true);
  if (!same_warnings(serial, priv.merged, "private workers=1")) {
    return 1;
  }

  // bytes/vPE regression gates: each sharing tier must beat the previous
  // one even with the shared structures' own bytes charged against it.
  if (!(arena1.memory.bytes_per_vpe < priv.memory.bytes_per_vpe)) {
    std::cerr << "smoke: shared arena bytes/vPE (" << arena1.memory.bytes_per_vpe
              << ") did not beat private baseline ("
              << priv.memory.bytes_per_vpe << ")\n";
    return 1;
  }
  if (!(forest1.memory.bytes_per_vpe < arena1.memory.bytes_per_vpe)) {
    std::cerr << "smoke: arena+forest bytes/vPE ("
              << forest1.memory.bytes_per_vpe
              << ") did not beat arena-only (" << arena1.memory.bytes_per_vpe
              << ")\n";
    return 1;
  }
  if (forest1.memory.forest_templates == 0) {
    std::cerr << "smoke: forest row published no templates (vacuous)\n";
    return 1;
  }
  std::cerr << "smoke ok: " << serial.size() << " warnings identical across "
            << "serial and async (1 and 3 workers; private, arena and "
            << "arena+forest tiers); bytes/vPE "
            << forest1.memory.bytes_per_vpe << " forest < "
            << arena1.memory.bytes_per_vpe << " arena < "
            << priv.memory.bytes_per_vpe << " private\n";
  return 0;
}

int run_json_mode(const std::string& path, std::size_t vpes_override) {
  const Workload w = build_workload();

  struct Scale {
    std::size_t vpes;
    std::size_t lines_per_vpe;
  };
  std::vector<Scale> scales;
  if (vpes_override != 0) {
    scales.push_back({vpes_override, 96});
  } else {
    scales.push_back({1000, 192});
    scales.push_back({10000, 96});
  }

  std::vector<Row> rows;
  bool parity_ok = true;
  for (const Scale scale : scales) {
    // Serial reference once per scale; every fp32 async run at ANY worker
    // count must reproduce it byte-for-byte.
    const std::vector<core::StreamWarning> serial =
        run_serial(w, w.detector, scale.vpes, scale.lines_per_vpe);
    if (serial.empty()) {
      std::cerr << "soak: serial replay produced no warnings at "
                << scale.vpes << " vPEs (vacuous)\n";
      return 1;
    }

    const auto add_row = [&](std::size_t workers, Sharing sharing,
                             bool stagger, bool quantize) {
      const core::AnomalyDetector& det =
          quantize ? static_cast<const core::AnomalyDetector&>(
                         w.detector_quantized)
                   : w.detector;
      Row row;
      row.vpes = scale.vpes;
      row.lines_per_vpe = scale.lines_per_vpe;
      row.workers = workers;
      row.sharing = sharing;
      row.stagger = stagger;
      row.quantize = quantize;
      row.result = run_soak(w, det, scale.vpes, scale.lines_per_vpe, workers,
                            sharing, stagger);
      // Quantized scoring legitimately shifts scores; parity is pinned on
      // the fp32 rows (the quant tier has its own rank-agreement gate).
      // Stagger rows ARE parity-checked: flush phase can never move a
      // warning, only its latency.
      if (!quantize) {
        row.parity_checked = true;
        parity_ok =
            same_warnings(serial, row.result.merged,
                          "vpes=" + std::to_string(scale.vpes) + " sharing=" +
                              sharing_name(sharing) +
                              " workers=" + std::to_string(workers) +
                              (stagger ? "" : " stagger=off")) &&
            parity_ok;
      }
      log_row(row);
      rows.push_back(std::move(row));
    };

    add_row(1, Sharing::kPrivate, true, false);  // pre-sharing baseline
    add_row(1, Sharing::kArena, true, false);    // token arena only
    add_row(1, Sharing::kForest, true, false);   // arena + template forest
    add_row(4, Sharing::kForest, true, false);   // forest, multi-worker
    // Stagger-off twin of the multi-worker forest row: same work, flush
    // deadlines all in phase — the p99/p999 delta is the stagger win.
    add_row(4, Sharing::kForest, false, false);
    // The full stack: int8 scoring over the shared arena + forest.
    add_row(1, Sharing::kForest, true, true);
  }
  if (!parity_ok) return 1;

  // All three bytes/vPE figures are in the JSON; also enforce the cuts
  // here so a regression cannot silently ship numbers where a sharing
  // tier fails to pay for itself.
  for (const Scale scale : scales) {
    double forest_bpv = -1.0, arena_bpv = -1.0, private_bpv = -1.0;
    for (const Row& row : rows) {
      if (row.vpes != scale.vpes || row.quantize || row.workers != 1 ||
          !row.stagger) {
        continue;
      }
      switch (row.sharing) {
        case Sharing::kPrivate: private_bpv = row.result.memory.bytes_per_vpe; break;
        case Sharing::kArena: arena_bpv = row.result.memory.bytes_per_vpe; break;
        case Sharing::kForest: forest_bpv = row.result.memory.bytes_per_vpe; break;
      }
    }
    if (!(arena_bpv >= 0.0 && private_bpv >= 0.0 && arena_bpv < private_bpv)) {
      std::cerr << "soak: shared arena bytes/vPE (" << arena_bpv
                << ") did not beat private baseline (" << private_bpv
                << ") at " << scale.vpes << " vPEs\n";
      return 1;
    }
    if (!(forest_bpv >= 0.0 && forest_bpv < arena_bpv)) {
      std::cerr << "soak: arena+forest bytes/vPE (" << forest_bpv
                << ") did not beat arena-only (" << arena_bpv << ") at "
                << scale.vpes << " vPEs\n";
      return 1;
    }
  }

  util::JsonWriter jw;
  jw.begin_object();
  jw.kv("bench", "fleet_soak");
  jw.kv("window", kWindow);
  jw.kv("flush_batch", 64);
  jw.kv("catalog_templates", w.catalog.size());
  jw.kv("model_vocab", w.vocab);
  jw.kv("threshold", w.threshold);
  jw.key("rows").begin_array();
  for (const Row& row : rows) write_row(jw, row);
  jw.end_array();
  jw.end_object();
  return bench::write_json_file(path, jw) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t vpes_override = 0;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--vpes") == 0 && i + 1 < argc) {
      vpes_override =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--vpes=", 7) == 0) {
      vpes_override =
          static_cast<std::size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    } else {
      std::cerr << "usage: bench_fleet_soak [--smoke | --json FILE] "
                << "[--vpes N]\n";
      return 1;
    }
  }
  if (smoke) return run_smoke();
  if (!json_path.empty()) return run_json_mode(json_path, vpes_override);
  return run_json_mode("BENCH_soak.json", vpes_override);
}
