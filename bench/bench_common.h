// Shared setup for the experiment benches.
//
// Every bench binary reproduces one figure of the paper: it simulates the
// standard fleet (38 vPEs × 18 months), runs the relevant part of the
// pipeline, and prints the same series the figure reports, alongside the
// paper's numbers where the paper states them.
//
// Environment knobs (all optional):
//   NFV_BENCH_SCALE   — gap_scale multiplier for the syslog process
//                       (default 3; larger = sparser logs = faster).
//   NFV_BENCH_MONTHS  — trace length in months (default 18).
//   NFV_BENCH_SEED    — simulation seed (default 42).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/parsed_fleet.h"
#include "core/pipeline.h"
#include "simnet/fleet.h"
#include "util/table.h"

namespace nfv::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::strtod(value, nullptr) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? static_cast<int>(std::strtol(value, nullptr, 10)) : fallback;
}

/// The standard bench fleet: the paper's deployment shape at a log rate
/// that keeps a single-core run in minutes.
inline simnet::FleetConfig standard_config() {
  simnet::FleetConfig config;
  config.seed = static_cast<std::uint64_t>(env_int("NFV_BENCH_SEED", 42));
  config.months = env_int("NFV_BENCH_MONTHS", 18);
  config.syslog.gap_scale = env_double("NFV_BENCH_SCALE", 3.0);
  return config;
}

/// Simulate + parse once, with progress output.
struct BenchFleet {
  simnet::FleetTrace trace;
  core::ParsedFleet parsed;
};

inline BenchFleet make_bench_fleet(const simnet::FleetConfig& config) {
  std::cerr << "[bench] simulating " << config.profiles.num_vpes
            << " vPEs x " << config.months
            << " months (gap_scale=" << config.syslog.gap_scale << ")...\n";
  BenchFleet fleet;
  fleet.trace = simnet::simulate_fleet(config);
  std::cerr << "[bench] " << fleet.trace.total_log_count() << " logs, "
            << fleet.trace.tickets.size() << " tickets; mining templates...\n";
  fleet.parsed = core::parse_fleet(fleet.trace);
  std::cerr << "[bench] " << fleet.parsed.vocab() << " templates\n";
  return fleet;
}

inline BenchFleet make_bench_fleet() { return make_bench_fleet(standard_config()); }

/// Pipeline options tuned for bench runtime (smaller training caps than
/// the library defaults; same algorithmic structure).
inline core::PipelineOptions bench_pipeline_options() {
  core::PipelineOptions options;
  core::LstmDetectorConfig lstm;
  lstm.max_train_windows = 3000;
  lstm.initial_epochs = 3;
  lstm.update_epochs = 1;
  lstm.adapt_epochs = 3;
  options.lstm_config = lstm;
  return options;
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n";
  if (!claim.empty()) std::cout << "paper: " << claim << "\n\n";
}

}  // namespace nfv::bench
