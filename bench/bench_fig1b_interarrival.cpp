// Figure 1(b): CDF of inter-arrival time of non-duplicated tickets per vPE.
//
// Paper findings: non-duplicated tickets arrive more than 40 minutes
// apart; 80% of consecutive tickets arrive more than 10 hours apart; 25%
// arrive more than 1000 hours (42 days) apart.
#include "bench/bench_common.h"

#include <algorithm>
#include <map>

#include "util/stats.h"

int main() {
  using namespace nfv;
  bench::print_header(
      "Figure 1(b) — non-duplicated ticket inter-arrival CDF (per vPE)",
      "min > 40 min; 80% > 10 h; 25% > 1000 h");

  auto config = bench::standard_config();
  config.syslog.gap_scale = 50.0;
  const auto trace = simnet::simulate_fleet(config);

  // Per-vPE gaps between consecutive non-duplicated tickets.
  std::map<int, util::SimTime> last_report;
  std::vector<double> gaps_hours;
  for (const simnet::Ticket& t : trace.tickets) {
    if (t.category == simnet::TicketCategory::kDuplicate) continue;
    const auto it = last_report.find(t.vpe);
    if (it != last_report.end()) {
      gaps_hours.push_back((t.report - it->second).hours());
    }
    last_report[t.vpe] = t.report;
  }
  std::sort(gaps_hours.begin(), gaps_hours.end());

  auto fraction_above = [&](double hours) {
    const auto it =
        std::upper_bound(gaps_hours.begin(), gaps_hours.end(), hours);
    return static_cast<double>(gaps_hours.end() - it) /
           static_cast<double>(gaps_hours.size());
  };

  util::Table table({"statistic", "paper", "measured"});
  table.add_row({"samples", "-", std::to_string(gaps_hours.size())});
  table.add_row({"min gap (h)", "> 0.67 (40 min)",
                 util::fmt_double(gaps_hours.front(), 2)});
  table.add_row({"fraction > 10 h", "0.80",
                 util::fmt_double(fraction_above(10.0), 3)});
  table.add_row({"fraction > 1000 h", "0.25",
                 util::fmt_double(fraction_above(1000.0), 3)});
  table.add_row({"median gap (h)", "-",
                 util::fmt_double(util::quantile(gaps_hours, 0.5), 1)});
  table.print(std::cout);

  std::cout << "\nCDF series (hours, cumulative fraction):\n";
  util::Table cdf({"gap_h", "cdf"});
  for (const auto& point : util::empirical_cdf_sampled(gaps_hours, 20)) {
    cdf.add_row({util::fmt_double(point.value, 2),
                 util::fmt_double(point.cumulative_fraction, 3)});
  }
  cdf.print(std::cout);
  return 0;
}
