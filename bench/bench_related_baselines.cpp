// Related-work baselines beyond the paper's own comparison (extensions):
//   - HMM sequential detector (classical failure prediction, [19]/[29])
//     against the LSTM on the same pipeline;
//   - SOM-based vPE grouping (vNMF, [21]/[24]) against the paper's
//     K-means grouping.
#include "bench/bench_common.h"

#include "core/metrics.h"

namespace {

using namespace nfv;

simnet::FleetConfig baseline_config() {
  simnet::FleetConfig config = bench::standard_config();
  config.months = 6;
  config.update_month = -1;
  return config;
}

core::PrcPoint best_f(const bench::BenchFleet& fleet,
                      const core::PipelineOptions& options,
                      core::EventGranularity granularity) {
  const auto result = core::run_pipeline(fleet.trace, fleet.parsed, options);
  core::MappingConfig mapping =
      core::adapt_mapping_for(granularity, core::MappingConfig{});
  const auto curve = core::precision_recall_curve(result.streams, mapping,
                                                  result.eval_days, 20);
  return core::best_f_point(curve);
}

}  // namespace

int main() {
  using namespace nfv;
  bench::print_header(
      "Related-work baselines (extensions) — HMM detector, SOM grouping",
      "the paper's related work: HMM-style sequential prediction and "
      "SOM-based NFV fault clustering");

  const auto fleet = bench::make_bench_fleet(baseline_config());

  // --- Detector: LSTM vs HMM. ---
  util::Table detectors({"detector", "best_P", "best_R", "best_F"});
  {
    core::PipelineOptions options = bench::bench_pipeline_options();
    std::cerr << "[bench] LSTM pipeline...\n";
    const auto best =
        best_f(fleet, options, core::EventGranularity::kPerLog);
    detectors.add_row({"LSTM (paper)", util::fmt_double(best.precision, 3),
                       util::fmt_double(best.recall, 3),
                       util::fmt_double(best.f_measure, 3)});
  }
  {
    core::PipelineOptions options = bench::bench_pipeline_options();
    options.detector = core::DetectorKind::kHmm;
    std::cerr << "[bench] HMM pipeline...\n";
    const auto best =
        best_f(fleet, options, core::EventGranularity::kPerLog);
    detectors.add_row({"HMM (related work)",
                       util::fmt_double(best.precision, 3),
                       util::fmt_double(best.recall, 3),
                       util::fmt_double(best.f_measure, 3)});
  }
  detectors.print(std::cout);
  std::cout << "\n";

  // --- Grouping: K-means (paper) vs SOM (vNMF). ---
  util::Table grouping({"grouping", "groups", "best_F"});
  {
    core::PipelineOptions options = bench::bench_pipeline_options();
    options.clustering.fixed_k = 4;
    std::cerr << "[bench] K-means grouping...\n";
    const auto result =
        core::run_pipeline(fleet.trace, fleet.parsed, options);
    core::MappingConfig mapping;
    const auto curve = core::precision_recall_curve(
        result.streams, mapping, result.eval_days, 20);
    grouping.add_row({"K-means (paper)",
                      std::to_string(result.clustering.num_groups),
                      util::fmt_double(core::best_f_point(curve).f_measure,
                                       3)});
  }
  {
    core::PipelineOptions options = bench::bench_pipeline_options();
    options.clustering.method = core::GroupingMethod::kSom;
    options.clustering.som.rows = 2;
    options.clustering.som.cols = 2;
    std::cerr << "[bench] SOM grouping...\n";
    const auto result =
        core::run_pipeline(fleet.trace, fleet.parsed, options);
    core::MappingConfig mapping;
    const auto curve = core::precision_recall_curve(
        result.streams, mapping, result.eval_days, 20);
    grouping.add_row({"SOM (vNMF-style)",
                      std::to_string(result.clustering.num_groups),
                      util::fmt_double(core::best_f_point(curve).f_measure,
                                       3)});
  }
  grouping.print(std::cout);
  std::cout
      << "\n(notes: on this substrate the HMM keeps pace with the LSTM — "
         "detection here is dominated by rare/unseen templates, which "
         "emission probabilities catch as well as a deep model; the LSTM's "
         "edge in the paper and in Fig. 6 comes from subtler sequential "
         "deviations. The two grouping methods land close, consistent with "
         "grouping only needing to separate dissimilar vPEs.)\n";
  return 0;
}
