// Figure 5: precision-recall curve of the LSTM detector for different
// predictive-period lengths (1 hour, 1 day, 2 days).
//
// Paper findings: performance converges at a predictive period of 1 day;
// the operating point maximizing F-measure sits at precision 0.8 / recall
// 0.81, with ~0.6 false alarms per day across all vPEs.
#include "bench/bench_common.h"

#include "core/metrics.h"

int main() {
  using namespace nfv;
  bench::print_header(
      "Figure 5 — LSTM PRC for predictive periods 1 h / 1 day / 2 days",
      "converges at 1 day; best-F precision 0.8, recall 0.81");

  const auto fleet = bench::make_bench_fleet();
  core::PipelineOptions options = bench::bench_pipeline_options();
  std::cerr << "[bench] running LSTM pipeline...\n";
  const core::PipelineResult result =
      core::run_pipeline(fleet.trace, fleet.parsed, options);

  const struct {
    const char* label;
    util::Duration period;
  } windows[] = {
      {"1h", util::Duration::of_hours(1)},
      {"1d", util::Duration::of_days(1)},
      {"2d", util::Duration::of_days(2)},
  };

  for (const auto& window : windows) {
    core::MappingConfig mapping;
    mapping.predictive_period = window.period;
    const auto curve = core::precision_recall_curve(
        result.streams, mapping, result.eval_days, 25);
    util::Table table({"threshold", "precision", "recall", "F", "FA/day"},
                      std::string("PRC, predictive period ") + window.label);
    for (const auto& point : curve) {
      table.add_row({util::fmt_double(point.threshold, 2),
                     util::fmt_double(point.precision, 3),
                     util::fmt_double(point.recall, 3),
                     util::fmt_double(point.f_measure, 3),
                     util::fmt_double(point.false_alarms_per_day, 2)});
    }
    table.print(std::cout);
    const auto best = core::best_f_point(curve);
    std::cout << "best-F @" << window.label << ": P="
              << util::fmt_double(best.precision, 3)
              << " R=" << util::fmt_double(best.recall, 3)
              << " F=" << util::fmt_double(best.f_measure, 3)
              << " FA/day=" << util::fmt_double(best.false_alarms_per_day, 2)
              << "  (paper @1d: P=0.80 R=0.81, FA/day=0.6)\n\n";
  }
  return 0;
}
