// Figure 3: cosine similarity of syslog distribution between each vPE and
// the fleet aggregate, quantiles over monthly windows.
//
// Paper findings: only about one third of vPEs have similarity > 0.8;
// 5 vPEs sit below 0.5 — so per-vPE (or per-group) models are needed.
#include "bench/bench_common.h"

#include <algorithm>

#include "logproc/dataset.h"
#include "util/stats.h"

int main() {
  using namespace nfv;
  bench::print_header(
      "Figure 3 — cosine similarity of per-vPE vs aggregate syslog "
      "distribution",
      "~1/3 of vPEs > 0.8; 5 vPEs < 0.5");

  const auto fleet = bench::make_bench_fleet();
  const auto& trace = fleet.trace;
  const auto& parsed = fleet.parsed;
  const std::size_t vocab = parsed.vocab();
  const auto n = static_cast<std::size_t>(trace.num_vpes());

  // Per §3.3 the analysis removes logs within 3 days of a ticket through
  // its resolution, and uses one-month sliding windows.
  std::vector<std::vector<logproc::ParsedLog>> clean(n);
  for (std::size_t v = 0; v < n; ++v) {
    clean[v] = logproc::exclude_intervals(
        parsed.logs_by_vpe[v],
        core::ticket_exclusion_windows(trace, static_cast<std::int32_t>(v)));
  }

  // For each month: aggregate distribution and per-vPE similarity.
  // Restrict to pre-update months so the figure reflects steady-state
  // diversity (the update is §3.3's separate finding).
  const int month_limit = std::min(trace.config.months,
                                   trace.config.update_month);
  std::vector<std::vector<double>> sims(n);  // per vPE over months
  for (int m = 0; m < month_limit; ++m) {
    const auto begin = util::month_start(m);
    const auto end = util::month_start(m + 1);
    std::vector<double> aggregate(vocab, 0.0);
    std::vector<std::vector<double>> per_vpe(n);
    for (std::size_t v = 0; v < n; ++v) {
      const auto window = logproc::slice_time(clean[v], begin, end);
      per_vpe[v] = logproc::template_distribution(window, vocab);
      for (std::size_t t = 0; t < vocab; ++t) aggregate[t] += per_vpe[v][t];
    }
    util::normalize_l1(aggregate);
    for (std::size_t v = 0; v < n; ++v) {
      sims[v].push_back(util::cosine_similarity(per_vpe[v], aggregate));
    }
  }

  // Sort vPEs by median similarity and print the quantile series.
  std::vector<std::size_t> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = v;
  std::vector<double> medians(n);
  for (std::size_t v = 0; v < n; ++v) {
    medians[v] = util::quantile(sims[v], 0.5);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              return medians[a] < medians[b];
            });

  util::Table table({"rank", "vpe", "min", "q25", "median", "q75", "max"},
                    "cosine similarity quantiles per vPE (sorted)");
  const std::vector<double> qs{0.0, 0.25, 0.5, 0.75, 1.0};
  int above_08 = 0;
  int below_05 = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    const std::size_t v = order[rank];
    const auto quantile_values = util::quantiles(sims[v], qs);
    std::vector<std::string> row{std::to_string(rank), std::to_string(v)};
    for (double q : quantile_values) row.push_back(util::fmt_double(q, 3));
    table.add_row(row);
    if (medians[v] > 0.8) ++above_08;
    if (medians[v] < 0.5) ++below_05;
  }
  table.print(std::cout);

  util::Table summary({"statistic", "paper", "measured"});
  summary.add_row({"vPEs with similarity > 0.8", "~1/3 of 38 (~13)",
                   std::to_string(above_08)});
  summary.add_row({"vPEs with similarity < 0.5", "5",
                   std::to_string(below_05)});
  summary.print(std::cout);
  return 0;
}
