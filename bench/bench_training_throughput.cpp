// Training throughput: serial reference kernels vs the packed AVX2+FMA
// training fast path, at 1 and 4 threads.
//
// The paper's deployment story is dominated by repeated training (initial
// per-cluster fits, monthly incremental updates, transfer fine-tunes,
// over-sampling refinement rounds), so examples/sec through
// SequenceModel::train_batch is the budget that matters. Three regimes run
// the identical batch schedule:
//   - serial: SIMD kernel dispatch forced off, one thread — the explicitly
//     fused reference path the determinism tests pin everything against;
//   - packed: AVX2+FMA packed kernels, one thread;
//   - packed+parallel: AVX2+FMA packed kernels, four threads (sharded BPTT
//     partials, embedding scatter, Adam chunks).
// Within each SIMD mode the losses are bit-identical for any thread count.
//
// Run with `--json FILE` for a machine-readable summary (examples/sec and
// speedups, e.g. BENCH_training.json), `--smoke` for a ~2 s CI sanity pass
// that also re-checks 1T-vs-4T loss bit-equality, or `--no-avx2` to force
// the reference kernels in google-benchmark mode (same escape hatch as the
// NFVPRED_NO_AVX2 environment variable).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "ml/matrix.h"
#include "ml/optimizer.h"
#include "ml/sequence_model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace nfv;

constexpr std::size_t kVocab = 64;
constexpr std::size_t kBatch = 64;

ml::SequenceModelConfig model_config() {
  ml::SequenceModelConfig config;
  config.vocab = kVocab;
  config.embed_dim = 16;
  config.hidden = 32;
  config.layers = 2;
  config.window = 10;
  return config;
}

std::vector<ml::SeqExample> make_dataset(std::size_t count) {
  const ml::SequenceModelConfig config = model_config();
  util::Rng rng(17);
  std::vector<ml::SeqExample> examples(count);
  for (ml::SeqExample& ex : examples) {
    ex.ids.resize(config.window);
    ex.dts.resize(config.window);
    for (std::size_t t = 0; t < config.window; ++t) {
      ex.ids[t] = static_cast<std::int32_t>(rng.uniform_index(kVocab));
      ex.dts[t] = static_cast<float>(rng.uniform(0.5, 600.0));
    }
    ex.target = static_cast<std::int32_t>(rng.uniform_index(kVocab));
  }
  return examples;
}

/// One full pass over the dataset in fixed batch order; returns the last
/// batch loss (kept alive as an optimization sink and a sanity value).
double train_pass(ml::SequenceModel& model, ml::Adam& adam,
                  const std::vector<ml::SeqExample>& examples) {
  double loss = 0.0;
  std::vector<const ml::SeqExample*> batch;
  batch.reserve(kBatch);
  for (std::size_t start = 0; start < examples.size(); start += kBatch) {
    batch.clear();
    const std::size_t end = std::min(start + kBatch, examples.size());
    for (std::size_t i = start; i < end; ++i) batch.push_back(&examples[i]);
    loss = model.train_batch(batch, adam);
  }
  return loss;
}

struct FreshModel {
  util::Rng rng;
  ml::SequenceModel model;
  ml::Adam adam;
  FreshModel() : rng(5), model(model_config(), rng), adam(3e-3f) {
    adam.bind(model.params());
  }
};

void BM_TrainSerialReference(benchmark::State& state) {
  const auto examples = make_dataset(512);
  util::set_global_threads(1);
  ml::set_simd_kernels_enabled(false);
  FreshModel fm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(train_pass(fm.model, fm.adam, examples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(examples.size()));
  ml::set_simd_kernels_enabled(true);
  util::set_global_threads(0);
}
BENCHMARK(BM_TrainSerialReference)->Unit(benchmark::kMillisecond);

void BM_TrainPacked(benchmark::State& state) {
  const auto examples = make_dataset(512);
  util::set_global_threads(static_cast<std::size_t>(state.range(0)));
  FreshModel fm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(train_pass(fm.model, fm.adam, examples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(examples.size()));
  util::set_global_threads(0);
}
BENCHMARK(BM_TrainPacked)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  volatile double sink = fn();
  (void)sink;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

struct Regime {
  const char* name;
  std::size_t threads;
  bool simd;
};

constexpr Regime kRegimes[] = {
    {"serial", 1, false},
    {"packed", 1, true},
    {"packed_parallel", 4, true},
};

/// One timed pass of a regime over a fresh model (identical workload every
/// time: same init seed, same batch schedule).
double regime_pass_seconds(const Regime& regime,
                           const std::vector<ml::SeqExample>& examples) {
  util::set_global_threads(regime.threads);
  ml::set_simd_kernels_enabled(regime.simd);
  FreshModel fm;
  const double seconds = timed_seconds(
      [&] { return train_pass(fm.model, fm.adam, examples); });
  ml::set_simd_kernels_enabled(true);
  util::set_global_threads(0);
  return seconds;
}

int run_json_mode(const std::string& path) {
  const auto examples = make_dataset(1024);
  constexpr std::size_t kReps = 7;
  // Warm-up (allocator, scratch shapes, pool threads), then interleaved
  // best-of-kReps: each rep times every regime back to back, so slow
  // phases of a noisy machine hit all regimes instead of skewing one.
  for (const Regime& regime : kRegimes) {
    (void)regime_pass_seconds(regime, examples);
  }
  double best[std::size(kRegimes)];
  std::fill(std::begin(best), std::end(best), 1e300);
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < std::size(kRegimes); ++i) {
      best[i] = std::min(best[i], regime_pass_seconds(kRegimes[i], examples));
    }
    std::cerr << "rep " << rep + 1 << "/" << kReps << " done\n";
  }
  std::vector<double> eps;
  for (std::size_t i = 0; i < std::size(kRegimes); ++i) {
    eps.push_back(static_cast<double>(examples.size()) / best[i]);
    std::cerr << kRegimes[i].name << " (threads=" << kRegimes[i].threads
              << ", simd=" << (kRegimes[i].simd ? "on" : "off")
              << "): " << eps.back() << " examples/s";
    if (i > 0) std::cerr << " (" << eps.back() / eps[0] << "x)";
    std::cerr << "\n";
  }

  nfv::util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "training_throughput");
  w.kv("examples", examples.size());
  w.kv("batch_size", kBatch);
  w.kv("window", model_config().window);
  w.kv("vocab", kVocab);
  w.key("results").begin_array();
  for (std::size_t i = 0; i < std::size(kRegimes); ++i) {
    w.begin_object()
        .kv("mode", kRegimes[i].name)
        .kv("threads", kRegimes[i].threads)
        .kv("simd", kRegimes[i].simd)
        .kv("examples_per_sec", eps[i])
        .kv("speedup_vs_serial", eps[i] / eps[0]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return bench::write_json_file(path, w) ? 0 : 1;
}

/// ~2 s CI smoke: every regime runs one short pass (losses must be
/// finite), and the 1T/4T losses within each SIMD mode must be bitwise
/// equal — the fast canary for both kernel and determinism regressions.
int run_smoke_mode() {
  const auto examples = make_dataset(192);
  for (const bool simd : {true, false}) {
    std::uint64_t bits_1t = 0, bits_4t = 0;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      util::set_global_threads(threads);
      ml::set_simd_kernels_enabled(simd);
      FreshModel fm;
      const double loss = train_pass(fm.model, fm.adam, examples);
      if (!std::isfinite(loss) || loss <= 0.0) {
        std::cerr << "smoke FAILED: non-finite loss (simd="
                  << (simd ? "on" : "off") << ", threads=" << threads
                  << ")\n";
        return 1;
      }
      std::uint64_t bits = 0;
      std::memcpy(&bits, &loss, sizeof(bits));
      (threads == 1 ? bits_1t : bits_4t) = bits;
    }
    if (bits_1t != bits_4t) {
      std::cerr << "smoke FAILED: 1T vs 4T losses differ (simd="
                << (simd ? "on" : "off") << ")\n";
      return 1;
    }
  }
  ml::set_simd_kernels_enabled(true);
  util::set_global_threads(0);
  std::cerr << "training smoke ok (1T == 4T in both SIMD modes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke_mode();
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return run_json_mode(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_mode(argv[i] + 7);
    }
    if (std::strcmp(argv[i], "--no-avx2") == 0) {
      ml::set_simd_kernels_enabled(false);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
