// Shared JSON output path for the bench binaries: every BENCH_*.json
// file is built with the project's structural JsonWriter (src/util/json.h)
// instead of hand-rolled string pasting, so escaping and number
// formatting are uniform across benches and the runtime stats dump —
// and everything round-trips through util::json_parse (pinned by
// tests/util/json_test.cpp).
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "util/json.h"

namespace nfv::bench {

/// Write a completed JSON document to `path`. Returns false (with a
/// message on stderr) when the file cannot be opened or the writer's
/// structure was left unbalanced.
inline bool write_json_file(const std::string& path,
                            const nfv::util::JsonWriter& writer) {
  if (!writer.complete()) {
    std::cerr << "json writer incomplete for " << path << "\n";
    return false;
  }
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  os << writer.str() << "\n";
  std::cerr << "wrote " << path << "\n";
  return true;
}

}  // namespace nfv::bench
