// Figure 8: probability of detecting an anomaly related to a ticket at
// different time offsets (≥15 min before, ≥5 min before, before report,
// within +5 min, within +15 min), per ticket type.
//
// Paper findings (Q1–Q3, §5.3): Circuit shows pre-ticket anomalies most
// often (74%), then Software (55%), Cable (40%), Hardware (28%); for 80%
// of tickets anomalies appear within 15 minutes after the report; of the
// early anomalies, 36–39% lead by ≥15 minutes.
#include "bench/bench_common.h"

#include "core/metrics.h"

int main() {
  using namespace nfv;
  bench::print_header(
      "Figure 8 — detection rate vs ticket type at time offsets",
      "pre-ticket rates: Circuit 0.74 > Software 0.55 > Cable 0.40 > "
      "Hardware 0.28; ~80% detected by +15 min");

  const auto fleet = bench::make_bench_fleet();
  core::PipelineOptions options = bench::bench_pipeline_options();
  std::cerr << "[bench] running LSTM pipeline...\n";
  const core::PipelineResult result =
      core::run_pipeline(fleet.trace, fleet.parsed, options);

  const auto rows = core::detection_rates_by_category(result.detections);
  util::Table table({"type", "tickets", "-15min", "-5min", "0min", "+5min",
                     "+15min", "paper_0min"});
  auto paper_rate = [](simnet::TicketCategory category) -> const char* {
    switch (category) {
      case simnet::TicketCategory::kCircuit:
        return "0.74";
      case simnet::TicketCategory::kSoftware:
        return "0.55";
      case simnet::TicketCategory::kCable:
        return "0.40";
      case simnet::TicketCategory::kHardware:
        return "0.28";
      default:
        return "-";
    }
  };
  for (const auto& row : rows) {
    std::vector<std::string> cells{simnet::to_string(row.category),
                                   std::to_string(row.ticket_count)};
    for (double r : row.rate) cells.push_back(util::fmt_double(r, 3));
    cells.push_back(paper_rate(row.category));
    table.add_row(cells);
  }
  const auto overall = core::overall_detection_rate(result.detections);
  std::vector<std::string> cells{"ALL", std::to_string(overall.ticket_count)};
  for (double r : overall.rate) cells.push_back(util::fmt_double(r, 3));
  cells.push_back("-");
  table.add_row(cells);
  table.print(std::cout);

  std::cout << "\nQ2 check: overall detection within +15 min = "
            << util::fmt_double(overall.rate[4], 3) << " (paper: ~0.80)\n";
  std::cout << "Q3 check: of tickets detected before report, fraction with "
               "lead >= 15 min:\n";
  for (const auto& row : rows) {
    if (row.rate[2] > 0.0) {
      std::cout << "  " << simnet::to_string(row.category) << ": "
                << util::fmt_double(row.rate[0] / row.rate[2], 3)
                << (row.category == simnet::TicketCategory::kCircuit
                        ? "  (paper: 0.36)"
                        : "")
                << "\n";
    }
  }
  return 0;
}
