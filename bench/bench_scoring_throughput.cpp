// Scoring throughput: window-by-window vs fused cross-stream batching.
//
// The paper's deployment budget (§5.1: "<1 hour" for model maintenance
// across 38 vPEs) is dominated by how fast trained models can score log
// windows. This benchmark measures windows/sec for the two inference
// regimes over the same fleet of streams:
//   - window-by-window: one detector.score() call per (k+1)-log window,
//     the granularity of the immediate streaming monitor;
//   - batched: one detector.score_streams() call over all streams, which
//     packs every window into fused forward batches via the batch planner.
// Scores are bit-identical between the two (see batch_invariance_test);
// only the throughput differs.
//
// Run with `--json FILE` to skip google-benchmark and emit a
// machine-readable summary (windows/sec and speedups at 1 and 4 threads),
// e.g. BENCH_scoring.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/lstm_detector.h"
#include "logproc/dataset.h"
#include "ml/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace nfv;

constexpr std::size_t kStreams = 12;
constexpr std::size_t kStreamLen = 600;
constexpr std::size_t kVocab = 64;

std::vector<logproc::ParsedLog> sample_logs(std::size_t count,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<logproc::ParsedLog> logs;
  logs.reserve(count);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += static_cast<std::int64_t>(rng.exponential(60.0)) + 1;
    logs.push_back({util::SimTime{t},
                    static_cast<std::int32_t>(rng.uniform_index(kVocab))});
  }
  return logs;
}

struct Fixture {
  core::LstmDetector detector;
  std::vector<std::vector<logproc::ParsedLog>> streams;
  std::size_t window = 0;
  std::size_t total_windows = 0;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    core::LstmDetectorConfig config;
    config.initial_epochs = 1;
    config.oversample = false;
    fx.detector = core::LstmDetector(config);
    fx.window = config.window;
    const auto train = sample_logs(2000, 2);
    const core::LogView view{train};
    fx.detector.fit({&view, 1}, kVocab);
    fx.streams.reserve(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      fx.streams.push_back(sample_logs(kStreamLen, 100 + s));
      fx.total_windows += kStreamLen - fx.window;
    }
    return fx;
  }();
  return f;
}

// One detector.score() call per sliding (k+1)-log window — exactly what an
// immediate (unbatched) streaming monitor does per ingested line.
double run_window_by_window(const Fixture& f) {
  double sink = 0.0;
  for (const auto& stream : f.streams) {
    for (std::size_t i = f.window; i < stream.size(); ++i) {
      const core::LogView view{stream.data() + (i - f.window), f.window + 1};
      const std::vector<core::ScoredEvent> events =
          f.detector.score(view, kVocab);
      sink += events.back().score;
    }
  }
  return sink;
}

// One fused call over all streams (the batch planner packs every window).
double run_batched(const Fixture& f) {
  std::vector<core::LogView> views(f.streams.begin(), f.streams.end());
  const std::vector<std::vector<core::ScoredEvent>> events =
      f.detector.score_streams(views, kVocab);
  double sink = 0.0;
  for (const auto& stream_events : events) {
    for (const core::ScoredEvent& event : stream_events) sink += event.score;
  }
  return sink;
}

void BM_ScoreWindowByWindow(benchmark::State& state) {
  const Fixture& f = fixture();
  util::set_global_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_window_by_window(f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.total_windows));
  util::set_global_threads(0);
}
BENCHMARK(BM_ScoreWindowByWindow)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ScoreBatchedCrossStream(benchmark::State& state) {
  const Fixture& f = fixture();
  util::set_global_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batched(f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.total_windows));
  util::set_global_threads(0);
}
BENCHMARK(BM_ScoreBatchedCrossStream)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --json mode: interleaved best-of-N wall-clock timing (robust to CPU
// contention from neighbouring processes), machine-readable output.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  volatile double sink = fn();
  (void)sink;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

int run_json_mode(const std::string& path) {
  const Fixture& f = fixture();
  const double windows = static_cast<double>(f.total_windows);
  constexpr std::size_t kReps = 7;

  struct Row {
    std::size_t threads;
    double wbw_wps;
    double batched_wps;
  };
  std::vector<Row> rows;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::set_global_threads(threads);
    run_window_by_window(f);  // warm-up (also stabilizes scratch shapes)
    run_batched(f);
    // Alternate the two regimes so a burst of external CPU load cannot
    // penalize only one of them; report the best (least-disturbed) rep.
    double wbw_best = 1e300, batched_best = 1e300;
    for (std::size_t r = 0; r < kReps; ++r) {
      wbw_best = std::min(
          wbw_best, timed_seconds([&] { return run_window_by_window(f); }));
      batched_best =
          std::min(batched_best, timed_seconds([&] { return run_batched(f); }));
    }
    Row row;
    row.threads = threads;
    row.wbw_wps = windows / wbw_best;
    row.batched_wps = windows / batched_best;
    rows.push_back(row);
    std::cerr << "threads=" << threads << " window-by-window=" << row.wbw_wps
              << " windows/s, batched=" << row.batched_wps
              << " windows/s (speedup " << row.batched_wps / row.wbw_wps
              << "x)\n";
  }
  util::set_global_threads(0);

  nfv::util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "scoring_throughput");
  w.kv("streams", kStreams);
  w.kv("stream_length", kStreamLen);
  w.kv("window", f.window);
  w.kv("total_windows", f.total_windows);
  w.kv("score_batch", f.detector.config().score_batch);
  w.key("results").begin_array();
  for (const Row& row : rows) {
    w.begin_object()
        .kv("threads", row.threads)
        .kv("window_by_window_windows_per_sec", row.wbw_wps)
        .kv("batched_windows_per_sec", row.batched_wps)
        .kv("speedup", row.batched_wps / row.wbw_wps);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return bench::write_json_file(path, w) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return run_json_mode(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_mode(argv[i] + 7);
    }
    // Same escape hatch as the NFVPRED_NO_AVX2 environment variable:
    // score through the reference kernels instead of the AVX2+FMA clones.
    if (std::strcmp(argv[i], "--no-avx2") == 0) {
      ml::set_simd_kernels_enabled(false);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
