// Scoring throughput: window-by-window vs fused cross-stream batching,
// with an optional int8-quantized tier of the batched regime.
//
// The paper's deployment budget (§5.1: "<1 hour" for model maintenance
// across 38 vPEs) is dominated by how fast trained models can score log
// windows. This benchmark measures windows/sec for the inference regimes
// over the same fleet of streams:
//   - window-by-window: one detector.score() call per (k+1)-log window,
//     the granularity of the immediate streaming monitor;
//   - batched: one detector.score_streams() call over all streams, which
//     packs every window into fused forward batches via the batch planner;
//   - batched+int8 (--quantize): the same fused path with the detector's
//     per-channel int8 sidecar installed, so every GEMM runs the packed
//     vpmaddubsw kernels of ml::matmul_quant.
// fp32 scores are bit-identical between the first two (see
// batch_invariance_test); the quantized tier trades exact score equality
// for the rank-agreement gate checked by `--smoke` below.
//
// Run with `--json FILE` to skip google-benchmark and emit a
// machine-readable summary (windows/sec and speedups at 1 and 4 threads),
// e.g. BENCH_scoring.json; add `--quantize` to include the int8 rows and
// the fp32-vs-int8 model weight bytes.
//
// Run with `--smoke` for the CI gate: trains a small model on a
// *patterned* corpus (cyclic template sequence + 10% noise, so the
// predicted distributions are sharp, unlike the uniform-random throughput
// fixture), quantizes it, and checks
//   1. DeepLog top-k rank agreement fp32 vs int8 >= 99.5% of windows,
//   2. quantized scores are bit-identical between the AVX2 and serial
//      kernel tiers, and
//   3. quantized scores are bit-identical across thread counts.
// Exit code is non-zero if any gate fails.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/detector.h"
#include "core/lstm_detector.h"
#include "logproc/dataset.h"
#include "ml/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace nfv;

constexpr std::size_t kStreams = 12;
constexpr std::size_t kStreamLen = 600;
constexpr std::size_t kVocab = 64;

std::vector<logproc::ParsedLog> sample_logs(std::size_t count,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<logproc::ParsedLog> logs;
  logs.reserve(count);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += static_cast<std::int64_t>(rng.exponential(60.0)) + 1;
    logs.push_back({util::SimTime{t},
                    static_cast<std::int32_t>(rng.uniform_index(kVocab))});
  }
  return logs;
}

struct Fixture {
  core::LstmDetector detector;
  /// Same trained weights with the int8 sidecar installed.
  core::LstmDetector quantized;
  std::vector<std::vector<logproc::ParsedLog>> streams;
  std::size_t window = 0;
  std::size_t total_windows = 0;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    core::LstmDetectorConfig config;
    config.initial_epochs = 1;
    config.oversample = false;
    // Inference-heavy sizing: at the library default (hidden=32) the
    // forward pass is dominated by the fixed fp32 work every tier shares
    // (gate sigmoids/tanh, softmax, embedding gather), which hides what
    // this benchmark exists to compare — the GEMM regimes. hidden=128
    // makes the per-step GEMMs the dominant term, the regime a
    // production-scale model lives in.
    config.hidden = 128;
    fx.detector = core::LstmDetector(config);
    fx.window = config.window;
    const auto train = sample_logs(2000, 2);
    const core::LogView view{train};
    fx.detector.fit({&view, 1}, kVocab);
    fx.quantized = fx.detector;
    fx.quantized.set_quantized(true);
    fx.streams.reserve(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      fx.streams.push_back(sample_logs(kStreamLen, 100 + s));
      fx.total_windows += kStreamLen - fx.window;
    }
    return fx;
  }();
  return f;
}

// One detector.score() call per sliding (k+1)-log window — exactly what an
// immediate (unbatched) streaming monitor does per ingested line.
double run_window_by_window(const Fixture& f) {
  double sink = 0.0;
  for (const auto& stream : f.streams) {
    for (std::size_t i = f.window; i < stream.size(); ++i) {
      const core::LogView view{stream.data() + (i - f.window), f.window + 1};
      const std::vector<core::ScoredEvent> events =
          f.detector.score(view, kVocab);
      sink += events.back().score;
    }
  }
  return sink;
}

// One fused call over all streams (the batch planner packs every window).
double run_batched_with(const core::LstmDetector& detector, const Fixture& f) {
  std::vector<core::LogView> views(f.streams.begin(), f.streams.end());
  const std::vector<std::vector<core::ScoredEvent>> events =
      detector.score_streams(views, kVocab);
  double sink = 0.0;
  for (const auto& stream_events : events) {
    for (const core::ScoredEvent& event : stream_events) sink += event.score;
  }
  return sink;
}

double run_batched(const Fixture& f) { return run_batched_with(f.detector, f); }

double run_batched_quant(const Fixture& f) {
  return run_batched_with(f.quantized, f);
}

void BM_ScoreWindowByWindow(benchmark::State& state) {
  const Fixture& f = fixture();
  util::set_global_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_window_by_window(f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.total_windows));
  util::set_global_threads(0);
}
BENCHMARK(BM_ScoreWindowByWindow)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ScoreBatchedCrossStream(benchmark::State& state) {
  const Fixture& f = fixture();
  util::set_global_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batched(f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.total_windows));
  util::set_global_threads(0);
}
BENCHMARK(BM_ScoreBatchedCrossStream)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ScoreBatchedQuantized(benchmark::State& state) {
  const Fixture& f = fixture();
  util::set_global_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batched_quant(f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.total_windows));
  util::set_global_threads(0);
}
BENCHMARK(BM_ScoreBatchedQuantized)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --json mode: interleaved best-of-N wall-clock timing (robust to CPU
// contention from neighbouring processes), machine-readable output.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  volatile double sink = fn();
  (void)sink;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

int run_json_mode(const std::string& path, bool quantize) {
  const Fixture& f = fixture();
  const double windows = static_cast<double>(f.total_windows);
  constexpr std::size_t kReps = 7;

  struct Row {
    std::size_t threads;
    double wbw_wps;
    double batched_wps;
    double quant_wps = 0.0;  // 0 when the int8 tier was not measured
  };
  std::vector<Row> rows;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::set_global_threads(threads);
    run_window_by_window(f);  // warm-up (also stabilizes scratch shapes)
    run_batched(f);
    if (quantize) run_batched_quant(f);
    // Alternate the regimes so a burst of external CPU load cannot
    // penalize only one of them; report the best (least-disturbed) rep.
    double wbw_best = 1e300, batched_best = 1e300, quant_best = 1e300;
    for (std::size_t r = 0; r < kReps; ++r) {
      wbw_best = std::min(
          wbw_best, timed_seconds([&] { return run_window_by_window(f); }));
      batched_best =
          std::min(batched_best, timed_seconds([&] { return run_batched(f); }));
      if (quantize) {
        quant_best = std::min(
            quant_best, timed_seconds([&] { return run_batched_quant(f); }));
      }
    }
    Row row;
    row.threads = threads;
    row.wbw_wps = windows / wbw_best;
    row.batched_wps = windows / batched_best;
    if (quantize) row.quant_wps = windows / quant_best;
    rows.push_back(row);
    std::cerr << "threads=" << threads << " window-by-window=" << row.wbw_wps
              << " windows/s, batched=" << row.batched_wps
              << " windows/s (speedup " << row.batched_wps / row.wbw_wps
              << "x)";
    if (quantize) {
      std::cerr << ", batched+int8=" << row.quant_wps << " windows/s ("
                << row.quant_wps / row.batched_wps << "x over fp32 batched)";
    }
    std::cerr << "\n";
  }
  util::set_global_threads(0);

  nfv::util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "scoring_throughput");
  w.kv("streams", kStreams);
  w.kv("stream_length", kStreamLen);
  w.kv("window", f.window);
  w.kv("hidden", f.detector.config().hidden);
  w.kv("total_windows", f.total_windows);
  w.kv("score_batch", f.detector.config().score_batch);
  if (quantize) {
    const core::ModelMemoryStats fp32_mem = f.detector.model_memory();
    const core::ModelMemoryStats quant_mem = f.quantized.model_memory();
    w.key("model").begin_object();
    w.kv("weight_bytes_fp32", fp32_mem.weight_bytes_fp32);
    w.kv("weight_bytes_quantized", quant_mem.weight_bytes_quantized);
    w.kv("weight_bytes_ratio",
         static_cast<double>(fp32_mem.weight_bytes_fp32) /
             static_cast<double>(quant_mem.weight_bytes_quantized));
    w.end_object();
  }
  w.key("results").begin_array();
  for (const Row& row : rows) {
    w.begin_object()
        .kv("threads", row.threads)
        .kv("window_by_window_windows_per_sec", row.wbw_wps)
        .kv("batched_windows_per_sec", row.batched_wps)
        .kv("speedup", row.batched_wps / row.wbw_wps);
    if (quantize) {
      w.kv("quantized_batched_windows_per_sec", row.quant_wps)
          .kv("quantized_speedup_vs_fp32_batched",
              row.quant_wps / row.batched_wps);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return bench::write_json_file(path, w) ? 0 : 1;
}

// --smoke: the int8 correctness gate (see file comment). Uses a patterned
// corpus — a cyclic template walk with 10% uniform noise — because rank
// agreement is only a meaningful gate when the model has sharp predictions
// to rank; the uniform-random throughput fixture trains to a nearly flat
// distribution whose ranks are tie-break noise.
std::vector<logproc::ParsedLog> patterned_logs(std::size_t count,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<logproc::ParsedLog> logs;
  logs.reserve(count);
  std::int64_t t = 0;
  std::int32_t prev = static_cast<std::int32_t>(rng.uniform_index(kVocab));
  for (std::size_t i = 0; i < count; ++i) {
    t += static_cast<std::int64_t>(rng.exponential(60.0)) + 1;
    const std::int32_t id =
        rng.uniform_index(10) == 0
            ? static_cast<std::int32_t>(rng.uniform_index(kVocab))
            : (prev + 1) % static_cast<std::int32_t>(kVocab);
    logs.push_back({util::SimTime{t}, id});
    prev = id;
  }
  return logs;
}

std::vector<std::vector<double>> score_all(
    const core::LstmDetector& detector,
    const std::vector<std::vector<logproc::ParsedLog>>& streams) {
  std::vector<core::LogView> views(streams.begin(), streams.end());
  const auto events = detector.score_streams(views, kVocab);
  std::vector<std::vector<double>> scores;
  scores.reserve(events.size());
  for (const auto& stream_events : events) {
    std::vector<double> row;
    row.reserve(stream_events.size());
    for (const core::ScoredEvent& event : stream_events) {
      row.push_back(event.score);
    }
    scores.push_back(std::move(row));
  }
  return scores;
}

int run_smoke_mode() {
  util::set_global_threads(1);
  core::LstmDetectorConfig config;
  config.initial_epochs = 3;
  config.oversample = false;
  config.score_mode = core::LstmScoreMode::kTargetRank;
  core::LstmDetector detector(config);
  const auto train = patterned_logs(4000, 11);
  const core::LogView view{train};
  detector.fit({&view, 1}, kVocab);

  core::LstmDetector quantized = detector;
  quantized.set_quantized(true);

  std::vector<std::vector<logproc::ParsedLog>> streams;
  for (std::size_t s = 0; s < 6; ++s) {
    streams.push_back(patterned_logs(400, 500 + s));
  }

  // Gate 1: DeepLog top-k agreement, window for window. The anomaly rule
  // thresholds the rank at k (anomalous iff the observed template is not
  // among the k most likely continuations), so the quantity that must
  // survive quantization is that decision — exact ranks deep in the flat
  // tail of the distribution (the noise windows) are tie-break order
  // among near-equal probabilities and are reported informationally.
  constexpr double kTopK = 9.0;
  const auto fp32_ranks = score_all(detector, streams);
  const auto quant_ranks = score_all(quantized, streams);
  std::size_t total = 0, decision_agree = 0, exact_agree = 0;
  for (std::size_t s = 0; s < fp32_ranks.size(); ++s) {
    for (std::size_t i = 0; i < fp32_ranks[s].size(); ++i) {
      ++total;
      if (fp32_ranks[s][i] == quant_ranks[s][i]) ++exact_agree;
      if ((fp32_ranks[s][i] <= kTopK) == (quant_ranks[s][i] <= kTopK)) {
        ++decision_agree;
      }
    }
  }
  const double agreement =
      total == 0 ? 0.0
                 : static_cast<double>(decision_agree) /
                       static_cast<double>(total);
  std::cerr << "smoke: top-k (k=" << kTopK
            << ") decision agreement fp32 vs int8 = " << decision_agree << "/"
            << total << " = " << agreement * 100.0 << "% (exact ranks: "
            << exact_agree << "/" << total << ")\n";
  bool ok = true;
  if (total == 0 || agreement < 0.995) {
    std::cerr << "smoke: FAIL top-k agreement below 99.5%\n";
    ok = false;
  }

  // Gate 2: quantized scores bit-identical AVX2 vs serial kernels.
  ml::set_simd_kernels_enabled(false);
  const auto serial_ranks = score_all(quantized, streams);
  ml::set_simd_kernels_enabled(true);
  if (serial_ranks != quant_ranks) {
    std::cerr << "smoke: FAIL int8 AVX2 vs serial scores differ\n";
    ok = false;
  } else {
    std::cerr << "smoke: int8 AVX2 == serial (bit-identical)\n";
  }

  // Gate 3: quantized scores bit-identical across thread counts.
  util::set_global_threads(4);
  const auto mt_ranks = score_all(quantized, streams);
  util::set_global_threads(0);
  if (mt_ranks != quant_ranks) {
    std::cerr << "smoke: FAIL int8 scores differ between 1 and 4 threads\n";
    ok = false;
  } else {
    std::cerr << "smoke: int8 threads=1 == threads=4 (bit-identical)\n";
  }

  std::cerr << (ok ? "smoke: PASS\n" : "smoke: FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quantize = false;
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
      ++i;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quantize") == 0) {
      quantize = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-avx2") == 0) {
      // Same escape hatch as the NFVPRED_NO_AVX2 environment variable:
      // score through the reference kernels instead of the AVX2 clones.
      ml::set_simd_kernels_enabled(false);
    }
  }
  if (smoke) return run_smoke_mode();
  if (!json_path.empty()) return run_json_mode(json_path, quantize);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
