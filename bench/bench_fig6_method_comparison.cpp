// Figure 6: anomaly-detection performance of LSTM vs Autoencoder vs
// One-Class SVM (all with the same customization + adaptation applied),
// plus the PCA residual baseline as an extension.
//
// Paper findings: the deep approaches far outperform the shallow OC-SVM
// (feature engineering is the bottleneck); LSTM edges out the autoencoder
// by capturing sequential patterns (precision 0.82 vs 0.77).
#include "bench/bench_common.h"

#include "core/metrics.h"

int main() {
  using namespace nfv;
  bench::print_header(
      "Figure 6 — LSTM vs Autoencoder vs OC-SVM (PRC + best F)",
      "LSTM P≈0.82 > Autoencoder P≈0.77 >> OC-SVM");

  const auto fleet = bench::make_bench_fleet();

  const struct {
    core::DetectorKind kind;
    const char* paper_note;
  } methods[] = {
      {core::DetectorKind::kLstm, "paper precision ~0.82"},
      {core::DetectorKind::kAutoencoder, "paper precision ~0.77"},
      {core::DetectorKind::kOcSvm, "paper: far worse (shallow)"},
      {core::DetectorKind::kPca, "extension baseline (Xu et al.)"},
  };

  util::Table summary(
      {"method", "best_P", "best_R", "best_F", "AUC-PR", "paper"});
  for (const auto& method : methods) {
    core::PipelineOptions options = bench::bench_pipeline_options();
    options.detector = method.kind;
    std::cerr << "[bench] running " << core::to_string(method.kind)
              << " pipeline...\n";
    const core::PipelineResult result =
        core::run_pipeline(fleet.trace, fleet.parsed, options);
    // Per-document detectors already aggregate a window per event, so the
    // ≥2-anomaly cluster rule only applies to the per-log LSTM.
    core::MappingConfig mapping;  // 1-day predictive period
    if (method.kind != core::DetectorKind::kLstm) {
      mapping.min_cluster_size = 1;
    }
    const auto curve = core::precision_recall_curve(
        result.streams, mapping, result.eval_days, 25);

    util::Table table({"threshold", "precision", "recall", "F"},
                      std::string("PRC — ") + core::to_string(method.kind));
    for (const auto& point : curve) {
      table.add_row({util::fmt_double(point.threshold, 3),
                     util::fmt_double(point.precision, 3),
                     util::fmt_double(point.recall, 3),
                     util::fmt_double(point.f_measure, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";

    const auto best = core::best_f_point(curve);
    summary.add_row({core::to_string(method.kind),
                     util::fmt_double(best.precision, 3),
                     util::fmt_double(best.recall, 3),
                     util::fmt_double(best.f_measure, 3),
                     util::fmt_double(core::auc_pr(curve), 3),
                     method.paper_note});
  }
  summary.print(std::cout);
  return 0;
}
