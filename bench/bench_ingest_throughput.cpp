// Streaming ingest throughput: serial per-line monitors vs the
// asynchronous ingest runtime.
//
// The paper's deployment vision is a runtime system keeping up with the
// fleet's live syslog rate (§1). This benchmark replays the same 8-vPE
// parsed-log firehose through:
//   - serial: one StreamMonitor per vPE, ingest_parsed per line — the
//     immediate (unbatched, single-threaded) reference;
//   - async N: AsyncIngest with N shard workers, micro-batched flushes.
// Warnings are byte-for-byte identical across all modes (per-vPE merge);
// only lines/sec changes. On a single-core host the win comes from
// micro-batching (fused GEMMs), not parallelism — worker counts beyond
// the core count mostly add scheduling overhead, which this benchmark
// reports honestly.
//
// Modes:
//   --json FILE   interleaved best-of-7 wall-clock summary (lines/sec for
//                 serial and async at 1 and 4 workers, plus the
//                 instrumented-vs-uninstrumented gap) → BENCH_ingest.json
//   --smoke       fast correctness gate for tools/ci.sh: assert the async
//                 warning stream equals the serial one at 1 and 4 workers
//                 AND that observability instrumentation costs <= 2%
//                 lines/sec (interleaved best-of comparison)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/async_ingest.h"
#include "core/lstm_detector.h"
#include "logproc/signature_tree.h"
#include "util/rng.h"

namespace {

using namespace nfv;

// vPE (shard) count; overridable with --vpes N so JSON rows are
// comparable with BENCH_soak.json at matching fleet sizes.
std::size_t g_vpes = 8;
constexpr std::size_t kLinesPerShard = 400;
constexpr std::size_t kVocab = 32;
constexpr std::size_t kWindow = 4;
constexpr double kThreshold = 15.0;

std::vector<logproc::ParsedLog> shard_logs(std::size_t shard) {
  util::Rng rng(900 + shard);
  std::vector<logproc::ParsedLog> logs;
  logs.reserve(kLinesPerShard);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < kLinesPerShard; ++i) {
    t += static_cast<std::int64_t>(rng.exponential(30.0)) + 1;
    // Occasional adjacent pairs of unknown templates (id >= model vocab)
    // so every mode produces real warning clusters to agree on.
    const bool anomaly = i % 97 == 60 || i % 97 == 61;
    const std::int32_t id =
        anomaly ? static_cast<std::int32_t>(kVocab)
                : static_cast<std::int32_t>(rng.uniform_index(kVocab));
    logs.push_back({util::SimTime{t}, id});
  }
  return logs;
}

struct Fixture {
  core::LstmDetector detector;
  std::vector<std::vector<logproc::ParsedLog>> streams;
  std::size_t total_lines = 0;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    core::LstmDetectorConfig config;
    config.window = kWindow;
    config.embed_dim = 8;
    config.hidden = 16;
    config.initial_epochs = 1;
    config.oversample = false;
    fx.detector = core::LstmDetector(config);
    util::Rng rng(7);
    std::vector<logproc::ParsedLog> train;
    std::int64_t t = 0;
    for (std::size_t i = 0; i < 3000; ++i) {
      t += static_cast<std::int64_t>(rng.exponential(30.0)) + 1;
      train.push_back({util::SimTime{t},
                       static_cast<std::int32_t>(rng.uniform_index(kVocab))});
    }
    const core::LogView view{train};
    fx.detector.fit({&view, 1}, kVocab);
    fx.streams.reserve(g_vpes);
    for (std::size_t s = 0; s < g_vpes; ++s) {
      fx.streams.push_back(shard_logs(s));
      fx.total_lines += fx.streams.back().size();
    }
    return fx;
  }();
  return f;
}

core::StreamMonitorConfig monitor_config() {
  core::StreamMonitorConfig config;
  config.threshold = kThreshold;
  config.window = kWindow;
  return config;
}

/// Immediate per-line reference: one monitor per vPE, lines interleaved
/// across vPEs in arrival order. Returns per-vPE warning streams.
std::vector<std::vector<core::StreamWarning>> run_serial(const Fixture& f) {
  std::vector<std::vector<core::StreamWarning>> warnings(g_vpes);
  std::vector<logproc::SignatureTree> trees(g_vpes);
  std::vector<core::StreamMonitor> monitors;
  monitors.reserve(g_vpes);
  for (std::size_t s = 0; s < g_vpes; ++s) {
    monitors.emplace_back(static_cast<std::int32_t>(s), &f.detector,
                          &trees[s], monitor_config(),
                          [&warnings, s](const core::StreamWarning& warning) {
                            warnings[s].push_back(warning);
                          });
  }
  for (std::size_t i = 0; i < kLinesPerShard; ++i) {
    for (std::size_t s = 0; s < g_vpes; ++s) {
      monitors[s].ingest_parsed(f.streams[s][i]);
    }
  }
  return warnings;
}

/// Async runtime: same interleaved firehose submitted from this thread,
/// scored by `workers` shard workers in micro-batches.
std::vector<core::StreamWarning> run_async(const Fixture& f,
                                           std::size_t workers,
                                           bool instrument = true) {
  core::AsyncIngestConfig config;
  config.workers = workers;
  config.flush_batch = 64;
  config.flush_deadline = std::chrono::microseconds(2000);
  config.single_producer = true;
  config.instrument = instrument;
  core::AsyncIngest ingest(&f.detector, config);
  for (std::size_t s = 0; s < g_vpes; ++s) {
    ingest.add_shard(static_cast<std::int32_t>(s), monitor_config());
  }
  ingest.start();
  for (std::size_t i = 0; i < kLinesPerShard; ++i) {
    for (std::size_t s = 0; s < g_vpes; ++s) {
      ingest.submit_parsed(s, f.streams[s][i]);
    }
  }
  ingest.flush();
  ingest.stop();
  std::vector<core::StreamWarning> drained;
  ingest.drain_warnings(drained);
  return core::merge_warnings_by_vpe(std::move(drained));
}

bool same_warnings(const std::vector<std::vector<core::StreamWarning>>& serial,
                   const std::vector<core::StreamWarning>& merged,
                   const std::string& label) {
  std::size_t total = 0;
  for (const auto& per_vpe : serial) total += per_vpe.size();
  if (merged.size() != total) {
    std::cerr << label << ": warning count " << merged.size()
              << " != serial " << total << "\n";
    return false;
  }
  std::size_t at = 0;
  for (const auto& per_vpe : serial) {
    for (const core::StreamWarning& expected : per_vpe) {
      const core::StreamWarning& actual = merged[at++];
      if (actual.vpe != expected.vpe ||
          actual.time.seconds != expected.time.seconds ||
          actual.anomaly_count != expected.anomaly_count ||
          actual.peak_score != expected.peak_score ||
          actual.trigger_template != expected.trigger_template) {
        std::cerr << label << ": warning " << (at - 1)
                  << " diverges from serial replay\n";
        return false;
      }
    }
  }
  return true;
}

void BM_IngestSerial(benchmark::State& state) {
  const Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_serial(f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.total_lines));
}
BENCHMARK(BM_IngestSerial)->Unit(benchmark::kMillisecond);

void BM_IngestAsync(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_async(f, workers));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.total_lines));
}
BENCHMARK(BM_IngestAsync)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  auto result = fn();
  benchmark::DoNotOptimize(result);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Instrumented-vs-uninstrumented gap, interleaved best-of-`reps` so a
/// burst of external load cannot penalize only one side. Each timed
/// sample covers two full runs to keep thread start/stop jitter small
/// relative to the measured work. Returns the overhead in percent
/// (negative = instrumented side measured faster, i.e. the gap is below
/// noise).
double measured_overhead_pct(const Fixture& f, std::size_t reps) {
  const auto sample = [&](bool instrument) {
    return timed_seconds([&] {
      run_async(f, 1, instrument);
      return run_async(f, 1, instrument);
    });
  };
  double on_best = 1e300, off_best = 1e300;
  run_async(f, 1, true);  // warm-up
  for (std::size_t r = 0; r < reps; ++r) {
    on_best = std::min(on_best, sample(true));
    off_best = std::min(off_best, sample(false));
  }
  std::cerr << "instrumented best=" << on_best * 1e3 << " ms, bare best="
            << off_best * 1e3 << " ms over 2x" << f.total_lines << " lines\n";
  return (on_best / off_best - 1.0) * 100.0;
}

/// Gate estimate: minimum overhead across up to `attempts` independent
/// measurements, stopping early once under `budget_pct`. Best-of is an
/// upper bound on the true gap that noise can only inflate, so taking the
/// min across attempts converges on the noise floor — a real regression
/// above budget still fails every attempt.
double gated_overhead_pct(const Fixture& f, double budget_pct) {
  double overhead_pct = 1e300;
  for (int attempt = 0; attempt < 3; ++attempt) {
    overhead_pct = std::min(overhead_pct, measured_overhead_pct(f, 9));
    if (overhead_pct <= budget_pct) break;
  }
  return overhead_pct;
}

int run_smoke() {
  const Fixture& f = fixture();
  const auto serial = run_serial(f);
  std::size_t total = 0;
  for (const auto& per_vpe : serial) total += per_vpe.size();
  if (total == 0) {
    std::cerr << "smoke: serial replay produced no warnings (vacuous)\n";
    return 1;
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    // Instrumentation must never feed back into scoring: the warning
    // stream stays byte-for-byte serial with histograms on AND off.
    for (const bool instrument : {true, false}) {
      if (!same_warnings(serial, run_async(f, workers, instrument),
                         "async workers=" + std::to_string(workers) +
                             (instrument ? " instrumented" : " bare"))) {
        return 1;
      }
    }
  }
  const double overhead_pct = gated_overhead_pct(f, 2.0);
  std::cerr << "instrumentation overhead: " << overhead_pct << "%\n";
  if (overhead_pct > 2.0) {
    std::cerr << "smoke: observability instrumentation costs "
              << overhead_pct << "% lines/sec (budget: 2%)\n";
    return 1;
  }
  std::cerr << "smoke ok: " << total << " warnings identical across serial"
            << " and async (1 and 4 workers, instrumented and bare); "
            << "instrumentation overhead within the 2% budget\n";
  return 0;
}

int run_json_mode(const std::string& path) {
  const Fixture& f = fixture();
  if (run_smoke() != 0) return 1;  // never report numbers for wrong results
  const double lines = static_cast<double>(f.total_lines);
  constexpr std::size_t kReps = 7;

  // Interleave the three modes so a burst of external CPU load cannot
  // penalize only one of them; keep the best (least-disturbed) rep.
  double serial_best = 1e300, async1_best = 1e300, async4_best = 1e300;
  run_serial(f);  // warm-up
  for (std::size_t r = 0; r < kReps; ++r) {
    serial_best =
        std::min(serial_best, timed_seconds([&] { return run_serial(f); }));
    async1_best =
        std::min(async1_best, timed_seconds([&] { return run_async(f, 1); }));
    async4_best =
        std::min(async4_best, timed_seconds([&] { return run_async(f, 4); }));
  }
  const double serial_lps = lines / serial_best;
  const double async1_lps = lines / async1_best;
  const double async4_lps = lines / async4_best;
  std::cerr << "serial=" << serial_lps << " lines/s, async(1)=" << async1_lps
            << " lines/s (" << async1_lps / serial_lps << "x), async(4)="
            << async4_lps << " lines/s (" << async4_lps / serial_lps
            << "x)\n";
  const double overhead_pct = gated_overhead_pct(f, 2.0);
  std::cerr << "instrumentation overhead: " << overhead_pct << "%\n";

  nfv::util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "ingest_throughput");
  w.kv("vpes", g_vpes);
  w.kv("shards", g_vpes);
  w.kv("lines_per_shard", kLinesPerShard);
  w.kv("total_lines", f.total_lines);
  w.kv("window", kWindow);
  w.kv("flush_batch", 64);
  w.key("results").begin_array();
  w.begin_object().kv("mode", "serial").kv("lines_per_sec", serial_lps);
  w.end_object();
  w.begin_object()
      .kv("mode", "async")
      .kv("workers", 1)
      .kv("lines_per_sec", async1_lps)
      .kv("speedup", async1_lps / serial_lps);
  w.end_object();
  w.begin_object()
      .kv("mode", "async")
      .kv("workers", 4)
      .kv("lines_per_sec", async4_lps)
      .kv("speedup", async4_lps / serial_lps);
  w.end_object();
  w.end_array();
  w.key("instrumentation").begin_object();
  w.kv("overhead_pct", overhead_pct);
  w.kv("budget_pct", 2.0);
  w.end_object();
  w.end_object();
  return bench::write_json_file(path, w) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // --vpes must be parsed before any mode runs (the fixture is built once,
  // sized by g_vpes, on first use).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vpes") == 0 && i + 1 < argc) {
      g_vpes = static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    } else if (std::strncmp(argv[i], "--vpes=", 7) == 0) {
      g_vpes = static_cast<std::size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    }
  }
  if (g_vpes == 0) {
    std::cerr << "--vpes must be >= 1\n";
    return 1;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return run_smoke();
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return run_json_mode(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_mode(argv[i] + 7);
    }
  }
  // Strip the already-consumed --vpes flags so the benchmark harness does
  // not reject them as unrecognized.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vpes") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--vpes=", 7) == 0) continue;
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
