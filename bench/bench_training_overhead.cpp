// §5.2 "Reducing Training Overhead": how much training data the system
// needs (a) initially, with vs without vPE clustering, and (b) to recover
// from a software update, with transfer learning vs full retraining.
//
// Paper findings: vPE clustering cuts the initial training data from 3
// months to 1 month; transfer learning cuts post-update recovery from 3
// months to 1 week.
#include "bench/bench_common.h"

#include <algorithm>

#include "core/metrics.h"
#include "logproc/dataset.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace {

using namespace nfv;
using logproc::ParsedLog;
using util::Duration;
using util::SimTime;

struct Evaluator {
  const simnet::FleetTrace& trace;
  const core::ParsedFleet& parsed;
  std::vector<std::vector<logproc::TimeInterval>> exclusions;

  explicit Evaluator(const bench::BenchFleet& fleet)
      : trace(fleet.trace), parsed(fleet.parsed) {
    exclusions.resize(parsed.logs_by_vpe.size());
    for (std::size_t v = 0; v < exclusions.size(); ++v) {
      exclusions[v] = core::ticket_exclusion_windows(
          trace, static_cast<std::int32_t>(v));
    }
  }

  std::vector<ParsedLog> normal(std::int32_t vpe, SimTime begin,
                                SimTime end) const {
    return logproc::exclude_intervals(
        logproc::slice_time(parsed.logs_by_vpe[static_cast<std::size_t>(vpe)],
                            begin, end),
        exclusions[static_cast<std::size_t>(vpe)]);
  }

  /// Train one detector on the given members' normal logs in
  /// [train_begin, train_end), evaluate best-F on [test_begin, test_end).
  double evaluate(const std::vector<std::int32_t>& members,
                  SimTime train_begin, SimTime train_end, SimTime test_begin,
                  SimTime test_end, core::LstmDetector* reuse = nullptr,
                  bool adapt_only = false) const {
    core::LstmDetectorConfig config;
    config.max_train_windows = 3000;
    config.initial_epochs = 3;
    config.adapt_epochs = 3;
    core::LstmDetector local(config);
    core::LstmDetector& detector = reuse ? *reuse : local;

    std::vector<std::vector<ParsedLog>> streams;
    for (std::int32_t v : members) {
      streams.push_back(normal(v, train_begin, train_end));
    }
    std::vector<core::LogView> views(streams.begin(), streams.end());
    const std::size_t vocab =
        parsed.vocab_at(util::month_of(train_end) + 1);
    if (adapt_only) {
      detector.adapt(views, vocab);
    } else {
      detector.fit(views, vocab);
    }

    // Score the test window and sweep for the best F.
    std::vector<core::VpeScoredStream> scored;
    for (std::int32_t v : members) {
      core::VpeScoredStream stream;
      stream.vpe = v;
      const auto logs = logproc::slice_time(
          parsed.logs_by_vpe[static_cast<std::size_t>(v)], test_begin,
          test_end);
      stream.events = detector.score(logs, parsed.vocab());
      core::MappingConfig mapping;
      stream.tickets = core::tickets_in_window(trace, v, test_begin,
                                               test_end,
                                               mapping.predictive_period);
      scored.push_back(std::move(stream));
    }
    core::MappingConfig mapping;
    const double days = Duration{(test_end - test_begin).seconds}.days();
    const auto curve =
        core::precision_recall_curve(scored, mapping, days, 20);
    return core::best_f_point(curve).f_measure;
  }
};

}  // namespace

int main() {
  using namespace nfv;
  bench::print_header(
      "§5.2 — training-data reduction via clustering and transfer learning",
      "clustering: 3 months → 1 month of initial data; transfer: 3 months "
      "→ 1 week of recovery data");

  const auto fleet = bench::make_bench_fleet();
  Evaluator eval(fleet);

  // Independent model fits fan out on the global pool (NFVPRED_THREADS
  // override); every evaluation is seeded per call, so the reported
  // numbers are identical for any thread count.
  util::ThreadPool& pool = util::global_pool();
  std::cout << "worker threads: " << pool.size() << "\n\n";

  // Groups from the standard clustering.
  util::Rng rng(1);
  const auto clustering =
      core::cluster_vpes(fleet.parsed, SimTime::epoch(),
                         util::month_start(1), {.fixed_k = 4}, rng);
  std::vector<std::vector<std::int32_t>> groups(clustering.num_groups);
  for (std::size_t v = 0; v < clustering.group_of_vpe.size(); ++v) {
    groups[static_cast<std::size_t>(clustering.group_of_vpe[v])].push_back(
        static_cast<std::int32_t>(v));
  }

  // --- Part A: initial training-data span, group models vs per-vPE. ---
  // Train on [3mo − span, 3mo), test on month 3.
  const SimTime anchor = util::month_start(3);
  const SimTime test_end = util::month_start(4);
  const struct {
    const char* label;
    Duration span;
  } spans[] = {
      {"1 week", Duration::of_days(7)},
      {"2 weeks", Duration::of_days(14)},
      {"1 month", Duration::of_days(30)},
      {"3 months", Duration::of_days(90)},
  };

  util::Table part_a({"initial data", "grouped (clustered) F",
                      "per-vPE models F"},
                     "Part A — initial training data vs F (test month 3)");
  for (const auto& span : spans) {
    // Grouped: one model per cluster, members aggregated. Each group fit
    // is independent — fan out, then reduce in group order.
    std::vector<double> group_parts(groups.size(), 0.0);
    pool.parallel_for(0, groups.size(), [&](std::size_t g) {
      if (groups[g].empty()) return;
      group_parts[g] = eval.evaluate(groups[g], anchor - span.span, anchor,
                                     anchor, test_end);
    });
    double group_f = 0.0;
    std::size_t group_w = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].empty()) continue;
      group_f += group_parts[g] * static_cast<double>(groups[g].size());
      group_w += groups[g].size();
    }
    group_f /= static_cast<double>(group_w);

    // Per-vPE: every vPE its own model on its own data (average F over a
    // fixed sample of vPEs to bound runtime).
    const std::size_t sample = 8;
    std::vector<double> solo_parts(sample, 0.0);
    pool.parallel_for(0, sample, [&](std::size_t v) {
      solo_parts[v] = eval.evaluate({static_cast<std::int32_t>(v)},
                                    anchor - span.span, anchor, anchor,
                                    test_end);
    });
    double solo_f = 0.0;
    for (double f : solo_parts) solo_f += f;
    solo_f /= static_cast<double>(sample);

    part_a.add_row({span.label, util::fmt_double(group_f, 3),
                    util::fmt_double(solo_f, 3)});
  }
  part_a.print(std::cout);
  std::cout << "(paper: grouped models reach full quality with ~1 month; "
               "per-vPE models need ~3 months)\n\n";

  // --- Part B: post-update recovery. Teacher = months [10, 13). ---
  const int update_month = fleet.trace.config.update_month;
  const SimTime update_start = util::month_start(update_month);
  // Evaluate everything on the same late two-month window (wide enough to
  // contain a meaningful ticket sample for one group).
  const SimTime eval_begin = util::month_start(update_month + 3);
  const SimTime eval_end = util::month_start(update_month + 5);

  util::Table part_b({"strategy", "data after update", "F"},
                     "Part B — recovery after the software update");
  // Use the *largest* group containing updated vPEs so the evaluation
  // window holds enough tickets.
  std::vector<std::vector<std::int32_t>> candidates;
  for (const auto& members : groups) {
    bool has_updated = false;
    for (std::int32_t v : members) {
      has_updated =
          has_updated ||
          fleet.trace.update_time_by_vpe[static_cast<std::size_t>(v)] !=
              simnet::never();
    }
    if (has_updated && !members.empty()) candidates.push_back(members);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  for (const auto& members : candidates) {

    // Teacher trained pre-update.
    core::LstmDetectorConfig config;
    config.max_train_windows = 3000;
    config.initial_epochs = 3;
    config.adapt_epochs = 3;

    // Transfer: teacher + 1 week.
    {
      core::LstmDetector detector(config);
      std::vector<std::vector<ParsedLog>> streams;
      for (std::int32_t v : members) {
        streams.push_back(eval.normal(v, util::month_start(update_month - 3),
                                      update_start));
      }
      std::vector<core::LogView> views(streams.begin(), streams.end());
      detector.fit(views, fleet.parsed.vocab_at(update_month));
      const double f = eval.evaluate(
          members, update_start, update_start + Duration::of_days(7),
          eval_begin, eval_end, &detector, /*adapt_only=*/true);
      part_b.add_row({"transfer learning (teacher + fine-tune)", "1 week",
                      util::fmt_double(f, 3)});
    }
    // Full retrain with increasing data — the three retrains are
    // independent; fan out and emit rows in span order.
    const struct {
      const char* label;
      Duration span;
    } retrain[] = {
        {"1 week", Duration::of_days(7)},
        {"1 month", Duration::of_days(30)},
        {"3 months", Duration::of_days(90)},
    };
    std::vector<double> retrain_f(std::size(retrain), 0.0);
    pool.parallel_for(0, std::size(retrain), [&](std::size_t r) {
      retrain_f[r] =
          eval.evaluate(members, update_start, update_start + retrain[r].span,
                        eval_begin, eval_end);
    });
    for (std::size_t r = 0; r < std::size(retrain); ++r) {
      part_b.add_row({"full retrain from scratch", retrain[r].label,
                      util::fmt_double(retrain_f[r], 3)});
    }
    break;  // one group suffices for the comparison
  }
  part_b.print(std::cout);
  std::cout << "(paper: 1 week of transfer-learning data matches months of "
               "retraining data)\n";
  return 0;
}
