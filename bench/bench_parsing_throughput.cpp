// Template-mining throughput: seed string miner vs the zero-allocation
// interned fast path, over the fleet simulator's own syslog trace.
//
// Mining is the very front of the runtime pipeline — every raw line pays
// it before any scoring happens — so the paper's "keep up with the live
// syslog rate" requirement (§1) starts here. This benchmark replays one
// full small-fleet trace (time-ordered across vPEs) through:
//   - learn, cold:  fresh tree, every line mined online (template
//     discovery + merging) — reference vs fast;
//   - match, warm:  read-only matching against a fully mined tree;
//   - ingest, warm: the StreamMonitor::ingest front end with a no-op
//     detector, i.e. mining + history tracking at line granularity — the
//     deployment-shaped number. "seed" runs the reference miner plus
//     ingest_parsed (exactly what ingest() did before the fast path).
// Mined ids are bit-identical across the two miners; --smoke asserts it.
//
// Modes:
//   --json FILE   interleaved best-of-7 wall-clock summary → BENCH_parsing.json
//   --smoke       fast equivalence gate for tools/ci.sh: identical learn()
//                 id sequences, template sets, and match() results
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/streaming.h"
#include "logproc/reference_miner.h"
#include "logproc/signature_tree.h"
#include "simnet/fleet.h"

namespace {

using namespace nfv;

constexpr std::size_t kWindow = 4;

/// Detector that scores nothing: score() returns an empty vector (which
/// never allocates), so StreamMonitor::ingest() pays mining + history
/// tracking only — the mining-dominated runtime path this benchmark
/// isolates.
class NullDetector final : public core::AnomalyDetector {
 public:
  void fit(std::span<const core::LogView>, std::size_t) override {}
  void update(std::span<const core::LogView>, std::size_t) override {}
  void adapt(std::span<const core::LogView>, std::size_t) override {}
  std::vector<core::ScoredEvent> score(core::LogView,
                                       std::size_t) const override {
    return {};
  }
  bool trained() const override { return true; }
  core::DetectorKind kind() const override {
    return core::DetectorKind::kLstm;
  }
  core::EventGranularity granularity() const override {
    return core::EventGranularity::kPerLog;
  }
};

struct Fixture {
  std::vector<std::string> lines;  // one fleet trace, global time order
  std::vector<util::SimTime> times;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    const simnet::FleetTrace trace =
        simnet::simulate_fleet(simnet::small_fleet_config(424242));
    const std::size_t n = trace.logs_by_vpe.size();
    std::vector<std::size_t> cursor(n, 0);
    while (true) {
      std::size_t best = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (cursor[v] >= trace.logs_by_vpe[v].size()) continue;
        if (best == n || trace.logs_by_vpe[v][cursor[v]].time <
                             trace.logs_by_vpe[best][cursor[best]].time) {
          best = v;
        }
      }
      if (best == n) break;
      fx.lines.push_back(trace.logs_by_vpe[best][cursor[best]].text);
      fx.times.push_back(trace.logs_by_vpe[best][cursor[best]].time);
      ++cursor[best];
    }
    return fx;
  }();
  return f;
}

template <typename Tree>
std::int64_t learn_all(Tree& tree, const std::vector<std::string>& lines) {
  std::int64_t sum = 0;
  for (const std::string& line : lines) sum += tree.learn(line);
  return sum;
}

template <typename Tree>
std::int64_t match_all(const Tree& tree,
                       const std::vector<std::string>& lines) {
  std::int64_t sum = 0;
  for (const std::string& line : lines) sum += tree.match(line);
  return sum;
}

core::StreamMonitorConfig monitor_config() {
  core::StreamMonitorConfig config;
  config.window = kWindow;
  return config;
}

/// Warm fast-path ingest: StreamMonitor::ingest(time, line) — online
/// mining via the monitor's (already warm) SignatureTree.
double ingest_fast(const Fixture& f, const NullDetector& detector,
                   logproc::SignatureTree& tree) {
  core::StreamMonitor monitor(0, &detector, &tree, monitor_config(), {});
  double sum = 0.0;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    sum += monitor.ingest(f.times[i], f.lines[i]);
  }
  return sum;
}

/// Warm seed-path ingest: reference miner + ingest_parsed — exactly what
/// StreamMonitor::ingest() amounted to before the interned fast path.
double ingest_seed(const Fixture& f, const NullDetector& detector,
                   logproc::ReferenceSignatureTree& tree,
                   logproc::SignatureTree& unused_tree) {
  core::StreamMonitor monitor(0, &detector, &unused_tree, monitor_config(),
                              {});
  double sum = 0.0;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    logproc::ParsedLog log;
    log.time = f.times[i];
    log.template_id = tree.learn(f.lines[i]);
    sum += monitor.ingest_parsed(log);
  }
  return sum;
}

void BM_LearnReference(benchmark::State& state) {
  const Fixture& f = fixture();
  for (auto _ : state) {
    logproc::ReferenceSignatureTree tree;
    benchmark::DoNotOptimize(learn_all(tree, f.lines));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.lines.size()));
}
BENCHMARK(BM_LearnReference)->Unit(benchmark::kMillisecond);

void BM_LearnFast(benchmark::State& state) {
  const Fixture& f = fixture();
  for (auto _ : state) {
    logproc::SignatureTree tree;
    benchmark::DoNotOptimize(learn_all(tree, f.lines));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.lines.size()));
}
BENCHMARK(BM_LearnFast)->Unit(benchmark::kMillisecond);

void BM_MatchReference(benchmark::State& state) {
  const Fixture& f = fixture();
  logproc::ReferenceSignatureTree tree;
  learn_all(tree, f.lines);
  for (auto _ : state) {
    benchmark::DoNotOptimize(match_all(tree, f.lines));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.lines.size()));
}
BENCHMARK(BM_MatchReference)->Unit(benchmark::kMillisecond);

void BM_MatchFast(benchmark::State& state) {
  const Fixture& f = fixture();
  logproc::SignatureTree tree;
  learn_all(tree, f.lines);
  for (auto _ : state) {
    benchmark::DoNotOptimize(match_all(tree, f.lines));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.lines.size()));
}
BENCHMARK(BM_MatchFast)->Unit(benchmark::kMillisecond);

void BM_IngestSeedMiner(benchmark::State& state) {
  const Fixture& f = fixture();
  NullDetector detector;
  logproc::ReferenceSignatureTree tree;
  logproc::SignatureTree unused;
  learn_all(tree, f.lines);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ingest_seed(f, detector, tree, unused));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.lines.size()));
}
BENCHMARK(BM_IngestSeedMiner)->Unit(benchmark::kMillisecond);

void BM_IngestFastMiner(benchmark::State& state) {
  const Fixture& f = fixture();
  NullDetector detector;
  logproc::SignatureTree tree;
  learn_all(tree, f.lines);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ingest_fast(f, detector, tree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.lines.size()));
}
BENCHMARK(BM_IngestFastMiner)->Unit(benchmark::kMillisecond);

template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  auto result = fn();
  benchmark::DoNotOptimize(result);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Equivalence gate: the fast tree must mine the exact id sequence and
/// template set of the seed miner over the whole trace (learn and match).
int run_smoke() {
  const Fixture& f = fixture();
  if (f.lines.size() < 1000) {
    std::cerr << "smoke: trace unexpectedly small (" << f.lines.size()
              << " lines)\n";
    return 1;
  }
  logproc::ReferenceSignatureTree reference;
  logproc::SignatureTree fast;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const std::int32_t ref_id = reference.learn(f.lines[i]);
    const std::int32_t fast_id = fast.learn(f.lines[i]);
    if (ref_id != fast_id) {
      std::cerr << "smoke: learn() diverged at line " << i << " (reference "
                << ref_id << ", fast " << fast_id << "): " << f.lines[i]
                << "\n";
      return 1;
    }
  }
  if (reference.size() != fast.size()) {
    std::cerr << "smoke: template counts diverge (" << reference.size()
              << " vs " << fast.size() << ")\n";
    return 1;
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference.signatures()[i].pattern() !=
            fast.pattern(static_cast<std::int32_t>(i)) ||
        reference.signatures()[i].match_count !=
            fast.match_count(static_cast<std::int32_t>(i))) {
      std::cerr << "smoke: template " << i << " diverges\n";
      return 1;
    }
  }
  for (std::size_t i = 0; i < f.lines.size(); i += 13) {
    if (reference.match(f.lines[i]) != fast.match(f.lines[i])) {
      std::cerr << "smoke: match() diverged at line " << i << "\n";
      return 1;
    }
  }
  std::cerr << "smoke ok: " << f.lines.size() << " lines, " << fast.size()
            << " templates, ids/patterns/match_counts identical\n";
  return 0;
}

int run_json_mode(const std::string& path) {
  const Fixture& f = fixture();
  if (run_smoke() != 0) return 1;  // never report numbers for wrong results
  const double lines = static_cast<double>(f.lines.size());
  constexpr std::size_t kReps = 7;

  NullDetector detector;
  logproc::ReferenceSignatureTree warm_reference;
  logproc::SignatureTree warm_fast;
  logproc::SignatureTree unused;
  learn_all(warm_reference, f.lines);
  learn_all(warm_fast, f.lines);

  // Interleave all modes so a burst of external CPU load cannot penalize
  // only one of them; keep the best (least-disturbed) rep of each.
  double learn_ref = 1e300, learn_fast = 1e300;
  double match_ref = 1e300, match_fast = 1e300;
  double ingest_ref = 1e300, ingest_fst = 1e300;
  for (std::size_t r = 0; r < kReps; ++r) {
    learn_ref = std::min(learn_ref, timed_seconds([&] {
                           logproc::ReferenceSignatureTree tree;
                           return learn_all(tree, f.lines);
                         }));
    learn_fast = std::min(learn_fast, timed_seconds([&] {
                            logproc::SignatureTree tree;
                            return learn_all(tree, f.lines);
                          }));
    match_ref = std::min(match_ref, timed_seconds([&] {
                           return match_all(warm_reference, f.lines);
                         }));
    match_fast = std::min(match_fast, timed_seconds([&] {
                            return match_all(warm_fast, f.lines);
                          }));
    ingest_ref = std::min(ingest_ref, timed_seconds([&] {
                            return ingest_seed(f, detector, warm_reference,
                                               unused);
                          }));
    ingest_fst = std::min(ingest_fst, timed_seconds([&] {
                            return ingest_fast(f, detector, warm_fast);
                          }));
  }

  const auto lps = [lines](double seconds) { return lines / seconds; };
  std::cerr << "learn:  ref=" << lps(learn_ref) << " fast=" << lps(learn_fast)
            << " lines/s (" << learn_ref / learn_fast << "x)\n"
            << "match:  ref=" << lps(match_ref) << " fast=" << lps(match_fast)
            << " lines/s (" << match_ref / match_fast << "x)\n"
            << "ingest: ref=" << lps(ingest_ref) << " fast=" << lps(ingest_fst)
            << " lines/s (" << ingest_ref / ingest_fst << "x)\n";

  nfv::util::JsonWriter w;
  w.begin_object();
  w.kv("bench", "parsing_throughput");
  w.kv("total_lines", f.lines.size());
  w.kv("templates", warm_fast.size());
  w.kv("window", kWindow);
  w.kv("threads", 1);
  w.key("results").begin_array();
  const auto row = [&w, &lps](const char* mode, const char* miner,
                              double seconds, double ref_seconds) {
    w.begin_object().kv("mode", mode).kv("miner", miner);
    w.kv("lines_per_sec", lps(seconds));
    if (ref_seconds > 0.0) w.kv("speedup", ref_seconds / seconds);
    w.end_object();
  };
  row("learn_cold", "reference", learn_ref, 0.0);
  row("learn_cold", "fast", learn_fast, learn_ref);
  row("match_warm", "reference", match_ref, 0.0);
  row("match_warm", "fast", match_fast, match_ref);
  row("ingest_warm", "reference", ingest_ref, 0.0);
  row("ingest_warm", "fast", ingest_fst, ingest_ref);
  w.end_array();
  w.end_object();
  return bench::write_json_file(path, w) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return run_smoke();
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return run_json_mode(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_mode(argv[i] + 7);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
