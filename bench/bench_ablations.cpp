// Ablations over the design choices DESIGN.md calls out:
//   1. minority over-sampling on/off (§4.2),
//   2. sequence-window length k,
//   3. LSTM hidden width (paper: "fairly insensitive to parameter choices"),
//   4. number of vPE groups K (+ the modularity curve used to pick K),
//   5. the ≥2-anomaly warning-signature cluster rule (§5.1).
#include "bench/bench_common.h"

#include "core/metrics.h"

namespace {

using namespace nfv;

simnet::FleetConfig ablation_config() {
  simnet::FleetConfig config = bench::standard_config();
  config.months = 6;        // ablations don't need the full 18 months
  config.update_month = -1; // steady-state comparisons
  return config;
}

/// Best-F over a fresh pipeline run with the given options.
core::PrcPoint run_best_f(const bench::BenchFleet& fleet,
                          const core::PipelineOptions& options) {
  const auto result = core::run_pipeline(fleet.trace, fleet.parsed, options);
  core::MappingConfig mapping;
  const auto curve = core::precision_recall_curve(result.streams, mapping,
                                                  result.eval_days, 20);
  return core::best_f_point(curve);
}

}  // namespace

int main() {
  using namespace nfv;
  bench::print_header("Ablations — design-choice sweeps",
                      "LSTM hyper-parameters are 'fairly insensitive'; "
                      "over-sampling lowers false alarms; K=4 groups; "
                      "warning signatures need >=2 clustered anomalies");

  const auto fleet = bench::make_bench_fleet(ablation_config());

  // --- 1. Over-sampling. ---
  {
    util::Table table({"oversampling", "best_P", "best_R", "best_F",
                       "FA/day"});
    for (const bool oversample : {false, true}) {
      core::PipelineOptions options = bench::bench_pipeline_options();
      options.oversample = oversample;
      std::cerr << "[bench] oversample=" << oversample << "...\n";
      const auto best = run_best_f(fleet, options);
      table.add_row({oversample ? "on" : "off",
                     util::fmt_double(best.precision, 3),
                     util::fmt_double(best.recall, 3),
                     util::fmt_double(best.f_measure, 3),
                     util::fmt_double(best.false_alarms_per_day, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- 2. Window length k. ---
  {
    util::Table table({"window k", "best_F"});
    for (const std::size_t k : {5u, 10u, 20u}) {
      core::PipelineOptions options = bench::bench_pipeline_options();
      options.lstm_config->window = k;
      std::cerr << "[bench] window=" << k << "...\n";
      table.add_row({std::to_string(k),
                     util::fmt_double(run_best_f(fleet, options).f_measure,
                                      3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- 3. Hidden width. ---
  {
    util::Table table({"hidden", "best_F"});
    for (const std::size_t h : {16u, 32u, 64u}) {
      core::PipelineOptions options = bench::bench_pipeline_options();
      options.lstm_config->hidden = h;
      std::cerr << "[bench] hidden=" << h << "...\n";
      table.add_row({std::to_string(h),
                     util::fmt_double(run_best_f(fleet, options).f_measure,
                                      3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- 4. Number of groups K + modularity curve. ---
  {
    util::Rng rng(5);
    const auto selection = core::cluster_vpes(
        fleet.parsed, util::SimTime::epoch(), util::month_start(1),
        {.fixed_k = 0, .k_min = 2, .k_max = 8}, rng);
    util::Table modularity({"K", "modularity"},
                           "modularity curve (K selection)");
    for (std::size_t i = 0; i < selection.modularity_by_k.size(); ++i) {
      modularity.add_row(
          {std::to_string(i + 2),
           util::fmt_double(selection.modularity_by_k[i], 4)});
    }
    modularity.print(std::cout);
    std::cout << "selected K = " << selection.selected_k
              << " (paper: 4 clusters)\n\n";

    util::Table table({"K groups", "best_F"});
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
      core::PipelineOptions options = bench::bench_pipeline_options();
      if (k == 1) {
        options.customize = false;
      } else {
        options.clustering.fixed_k = k;
      }
      std::cerr << "[bench] K=" << k << "...\n";
      table.add_row({std::to_string(k),
                     util::fmt_double(run_best_f(fleet, options).f_measure,
                                      3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- 5. Warning-signature cluster rule (mapping-level; reuses one run). ---
  {
    core::PipelineOptions options = bench::bench_pipeline_options();
    std::cerr << "[bench] cluster-rule sweep...\n";
    const auto result =
        core::run_pipeline(fleet.trace, fleet.parsed, options);
    util::Table table({"min cluster size", "best_P", "best_R", "best_F",
                       "FA/day"});
    for (const std::size_t min_size : {1u, 2u, 3u}) {
      core::MappingConfig mapping;
      mapping.min_cluster_size = min_size;
      const auto curve = core::precision_recall_curve(
          result.streams, mapping, result.eval_days, 20);
      const auto best = core::best_f_point(curve);
      table.add_row({std::to_string(min_size),
                     util::fmt_double(best.precision, 3),
                     util::fmt_double(best.recall, 3),
                     util::fmt_double(best.f_measure, 3),
                     util::fmt_double(best.false_alarms_per_day, 2)});
    }
    table.print(std::cout);
    std::cout << "(paper: matched tickets always had >=2 anomalies <1 min "
                 "apart; the rule suppresses isolated false positives)\n";
  }
  return 0;
}
