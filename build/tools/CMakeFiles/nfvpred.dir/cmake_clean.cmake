file(REMOVE_RECURSE
  "CMakeFiles/nfvpred.dir/nfvpred_cli.cpp.o"
  "CMakeFiles/nfvpred.dir/nfvpred_cli.cpp.o.d"
  "nfvpred"
  "nfvpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfvpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
