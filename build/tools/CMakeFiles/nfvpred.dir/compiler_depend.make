# Empty compiler generated dependencies file for nfvpred.
# This may be replaced when dependencies are built.
