# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/nfvpred")
set_tests_properties(cli_usage PROPERTIES  PASS_REGULAR_EXPRESSION "usage: nfvpred" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pipeline "/usr/bin/cmake" "-DNFVPRED=/root/repo/build/tools/nfvpred" "-DWORK_DIR=/root/repo/build/tools/cli_test" "-P" "/root/repo/tools/cli_pipeline_test.cmake")
set_tests_properties(cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
