# Empty compiler generated dependencies file for signature_mining.
# This may be replaced when dependencies are built.
