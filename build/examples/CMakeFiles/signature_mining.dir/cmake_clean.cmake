file(REMOVE_RECURSE
  "CMakeFiles/signature_mining.dir/signature_mining.cpp.o"
  "CMakeFiles/signature_mining.dir/signature_mining.cpp.o.d"
  "signature_mining"
  "signature_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
