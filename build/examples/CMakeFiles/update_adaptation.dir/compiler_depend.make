# Empty compiler generated dependencies file for update_adaptation.
# This may be replaced when dependencies are built.
