file(REMOVE_RECURSE
  "CMakeFiles/update_adaptation.dir/update_adaptation.cpp.o"
  "CMakeFiles/update_adaptation.dir/update_adaptation.cpp.o.d"
  "update_adaptation"
  "update_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
