file(REMOVE_RECURSE
  "libnfv_simnet.a"
)
