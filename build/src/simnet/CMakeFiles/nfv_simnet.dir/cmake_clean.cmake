file(REMOVE_RECURSE
  "CMakeFiles/nfv_simnet.dir/anomaly_emitter.cpp.o"
  "CMakeFiles/nfv_simnet.dir/anomaly_emitter.cpp.o.d"
  "CMakeFiles/nfv_simnet.dir/fault_injector.cpp.o"
  "CMakeFiles/nfv_simnet.dir/fault_injector.cpp.o.d"
  "CMakeFiles/nfv_simnet.dir/fleet.cpp.o"
  "CMakeFiles/nfv_simnet.dir/fleet.cpp.o.d"
  "CMakeFiles/nfv_simnet.dir/syslog_process.cpp.o"
  "CMakeFiles/nfv_simnet.dir/syslog_process.cpp.o.d"
  "CMakeFiles/nfv_simnet.dir/template_catalog.cpp.o"
  "CMakeFiles/nfv_simnet.dir/template_catalog.cpp.o.d"
  "CMakeFiles/nfv_simnet.dir/ticketing.cpp.o"
  "CMakeFiles/nfv_simnet.dir/ticketing.cpp.o.d"
  "CMakeFiles/nfv_simnet.dir/types.cpp.o"
  "CMakeFiles/nfv_simnet.dir/types.cpp.o.d"
  "CMakeFiles/nfv_simnet.dir/vpe_profile.cpp.o"
  "CMakeFiles/nfv_simnet.dir/vpe_profile.cpp.o.d"
  "libnfv_simnet.a"
  "libnfv_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
