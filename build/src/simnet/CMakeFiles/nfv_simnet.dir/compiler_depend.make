# Empty compiler generated dependencies file for nfv_simnet.
# This may be replaced when dependencies are built.
