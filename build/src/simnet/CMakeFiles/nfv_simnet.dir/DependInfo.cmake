
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/anomaly_emitter.cpp" "src/simnet/CMakeFiles/nfv_simnet.dir/anomaly_emitter.cpp.o" "gcc" "src/simnet/CMakeFiles/nfv_simnet.dir/anomaly_emitter.cpp.o.d"
  "/root/repo/src/simnet/fault_injector.cpp" "src/simnet/CMakeFiles/nfv_simnet.dir/fault_injector.cpp.o" "gcc" "src/simnet/CMakeFiles/nfv_simnet.dir/fault_injector.cpp.o.d"
  "/root/repo/src/simnet/fleet.cpp" "src/simnet/CMakeFiles/nfv_simnet.dir/fleet.cpp.o" "gcc" "src/simnet/CMakeFiles/nfv_simnet.dir/fleet.cpp.o.d"
  "/root/repo/src/simnet/syslog_process.cpp" "src/simnet/CMakeFiles/nfv_simnet.dir/syslog_process.cpp.o" "gcc" "src/simnet/CMakeFiles/nfv_simnet.dir/syslog_process.cpp.o.d"
  "/root/repo/src/simnet/template_catalog.cpp" "src/simnet/CMakeFiles/nfv_simnet.dir/template_catalog.cpp.o" "gcc" "src/simnet/CMakeFiles/nfv_simnet.dir/template_catalog.cpp.o.d"
  "/root/repo/src/simnet/ticketing.cpp" "src/simnet/CMakeFiles/nfv_simnet.dir/ticketing.cpp.o" "gcc" "src/simnet/CMakeFiles/nfv_simnet.dir/ticketing.cpp.o.d"
  "/root/repo/src/simnet/types.cpp" "src/simnet/CMakeFiles/nfv_simnet.dir/types.cpp.o" "gcc" "src/simnet/CMakeFiles/nfv_simnet.dir/types.cpp.o.d"
  "/root/repo/src/simnet/vpe_profile.cpp" "src/simnet/CMakeFiles/nfv_simnet.dir/vpe_profile.cpp.o" "gcc" "src/simnet/CMakeFiles/nfv_simnet.dir/vpe_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nfv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
