file(REMOVE_RECURSE
  "CMakeFiles/nfv_core.dir/feature_detectors.cpp.o"
  "CMakeFiles/nfv_core.dir/feature_detectors.cpp.o.d"
  "CMakeFiles/nfv_core.dir/hmm_detector.cpp.o"
  "CMakeFiles/nfv_core.dir/hmm_detector.cpp.o.d"
  "CMakeFiles/nfv_core.dir/lstm_detector.cpp.o"
  "CMakeFiles/nfv_core.dir/lstm_detector.cpp.o.d"
  "CMakeFiles/nfv_core.dir/mapper.cpp.o"
  "CMakeFiles/nfv_core.dir/mapper.cpp.o.d"
  "CMakeFiles/nfv_core.dir/metrics.cpp.o"
  "CMakeFiles/nfv_core.dir/metrics.cpp.o.d"
  "CMakeFiles/nfv_core.dir/parsed_fleet.cpp.o"
  "CMakeFiles/nfv_core.dir/parsed_fleet.cpp.o.d"
  "CMakeFiles/nfv_core.dir/pipeline.cpp.o"
  "CMakeFiles/nfv_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/nfv_core.dir/streaming.cpp.o"
  "CMakeFiles/nfv_core.dir/streaming.cpp.o.d"
  "CMakeFiles/nfv_core.dir/vpe_clustering.cpp.o"
  "CMakeFiles/nfv_core.dir/vpe_clustering.cpp.o.d"
  "libnfv_core.a"
  "libnfv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
