file(REMOVE_RECURSE
  "libnfv_core.a"
)
