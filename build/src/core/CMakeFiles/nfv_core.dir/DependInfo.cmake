
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feature_detectors.cpp" "src/core/CMakeFiles/nfv_core.dir/feature_detectors.cpp.o" "gcc" "src/core/CMakeFiles/nfv_core.dir/feature_detectors.cpp.o.d"
  "/root/repo/src/core/hmm_detector.cpp" "src/core/CMakeFiles/nfv_core.dir/hmm_detector.cpp.o" "gcc" "src/core/CMakeFiles/nfv_core.dir/hmm_detector.cpp.o.d"
  "/root/repo/src/core/lstm_detector.cpp" "src/core/CMakeFiles/nfv_core.dir/lstm_detector.cpp.o" "gcc" "src/core/CMakeFiles/nfv_core.dir/lstm_detector.cpp.o.d"
  "/root/repo/src/core/mapper.cpp" "src/core/CMakeFiles/nfv_core.dir/mapper.cpp.o" "gcc" "src/core/CMakeFiles/nfv_core.dir/mapper.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/nfv_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/nfv_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/parsed_fleet.cpp" "src/core/CMakeFiles/nfv_core.dir/parsed_fleet.cpp.o" "gcc" "src/core/CMakeFiles/nfv_core.dir/parsed_fleet.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/nfv_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/nfv_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/nfv_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/nfv_core.dir/streaming.cpp.o.d"
  "/root/repo/src/core/vpe_clustering.cpp" "src/core/CMakeFiles/nfv_core.dir/vpe_clustering.cpp.o" "gcc" "src/core/CMakeFiles/nfv_core.dir/vpe_clustering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nfv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nfv_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/logproc/CMakeFiles/nfv_logproc.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/nfv_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
