# Empty dependencies file for nfv_core.
# This may be replaced when dependencies are built.
