
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/activations.cpp" "src/ml/CMakeFiles/nfv_ml.dir/activations.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/activations.cpp.o.d"
  "/root/repo/src/ml/autoencoder.cpp" "src/ml/CMakeFiles/nfv_ml.dir/autoencoder.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/autoencoder.cpp.o.d"
  "/root/repo/src/ml/dense.cpp" "src/ml/CMakeFiles/nfv_ml.dir/dense.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/dense.cpp.o.d"
  "/root/repo/src/ml/embedding.cpp" "src/ml/CMakeFiles/nfv_ml.dir/embedding.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/embedding.cpp.o.d"
  "/root/repo/src/ml/hmm.cpp" "src/ml/CMakeFiles/nfv_ml.dir/hmm.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/hmm.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/nfv_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/loss.cpp" "src/ml/CMakeFiles/nfv_ml.dir/loss.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/loss.cpp.o.d"
  "/root/repo/src/ml/lstm.cpp" "src/ml/CMakeFiles/nfv_ml.dir/lstm.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/lstm.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/nfv_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/ocsvm.cpp" "src/ml/CMakeFiles/nfv_ml.dir/ocsvm.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/ocsvm.cpp.o.d"
  "/root/repo/src/ml/optimizer.cpp" "src/ml/CMakeFiles/nfv_ml.dir/optimizer.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/optimizer.cpp.o.d"
  "/root/repo/src/ml/param.cpp" "src/ml/CMakeFiles/nfv_ml.dir/param.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/param.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/nfv_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/sequence_model.cpp" "src/ml/CMakeFiles/nfv_ml.dir/sequence_model.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/sequence_model.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/nfv_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/som.cpp" "src/ml/CMakeFiles/nfv_ml.dir/som.cpp.o" "gcc" "src/ml/CMakeFiles/nfv_ml.dir/som.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nfv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
