# Empty compiler generated dependencies file for nfv_ml.
# This may be replaced when dependencies are built.
