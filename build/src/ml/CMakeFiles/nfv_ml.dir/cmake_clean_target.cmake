file(REMOVE_RECURSE
  "libnfv_ml.a"
)
