
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logproc/dataset.cpp" "src/logproc/CMakeFiles/nfv_logproc.dir/dataset.cpp.o" "gcc" "src/logproc/CMakeFiles/nfv_logproc.dir/dataset.cpp.o.d"
  "/root/repo/src/logproc/signature_tree.cpp" "src/logproc/CMakeFiles/nfv_logproc.dir/signature_tree.cpp.o" "gcc" "src/logproc/CMakeFiles/nfv_logproc.dir/signature_tree.cpp.o.d"
  "/root/repo/src/logproc/tokenizer.cpp" "src/logproc/CMakeFiles/nfv_logproc.dir/tokenizer.cpp.o" "gcc" "src/logproc/CMakeFiles/nfv_logproc.dir/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nfv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nfv_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
