file(REMOVE_RECURSE
  "libnfv_logproc.a"
)
