# Empty compiler generated dependencies file for nfv_logproc.
# This may be replaced when dependencies are built.
