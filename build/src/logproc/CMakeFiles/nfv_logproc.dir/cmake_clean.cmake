file(REMOVE_RECURSE
  "CMakeFiles/nfv_logproc.dir/dataset.cpp.o"
  "CMakeFiles/nfv_logproc.dir/dataset.cpp.o.d"
  "CMakeFiles/nfv_logproc.dir/signature_tree.cpp.o"
  "CMakeFiles/nfv_logproc.dir/signature_tree.cpp.o.d"
  "CMakeFiles/nfv_logproc.dir/tokenizer.cpp.o"
  "CMakeFiles/nfv_logproc.dir/tokenizer.cpp.o.d"
  "libnfv_logproc.a"
  "libnfv_logproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_logproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
