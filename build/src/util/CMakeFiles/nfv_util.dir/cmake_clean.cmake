file(REMOVE_RECURSE
  "CMakeFiles/nfv_util.dir/check.cpp.o"
  "CMakeFiles/nfv_util.dir/check.cpp.o.d"
  "CMakeFiles/nfv_util.dir/rng.cpp.o"
  "CMakeFiles/nfv_util.dir/rng.cpp.o.d"
  "CMakeFiles/nfv_util.dir/sim_time.cpp.o"
  "CMakeFiles/nfv_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/nfv_util.dir/stats.cpp.o"
  "CMakeFiles/nfv_util.dir/stats.cpp.o.d"
  "CMakeFiles/nfv_util.dir/strings.cpp.o"
  "CMakeFiles/nfv_util.dir/strings.cpp.o.d"
  "CMakeFiles/nfv_util.dir/table.cpp.o"
  "CMakeFiles/nfv_util.dir/table.cpp.o.d"
  "libnfv_util.a"
  "libnfv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
