# Empty dependencies file for nfv_util.
# This may be replaced when dependencies are built.
