file(REMOVE_RECURSE
  "libnfv_util.a"
)
