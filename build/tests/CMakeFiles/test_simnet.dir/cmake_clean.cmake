file(REMOVE_RECURSE
  "CMakeFiles/test_simnet.dir/simnet/anomaly_emitter_test.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/anomaly_emitter_test.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/fault_injector_test.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/fault_injector_test.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/fleet_test.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/fleet_test.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/syslog_process_test.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/syslog_process_test.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/template_catalog_test.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/template_catalog_test.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/ticketing_test.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/ticketing_test.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/types_test.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/types_test.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/vpe_profile_test.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/vpe_profile_test.cpp.o.d"
  "test_simnet"
  "test_simnet.pdb"
  "test_simnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
