
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simnet/anomaly_emitter_test.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/anomaly_emitter_test.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/anomaly_emitter_test.cpp.o.d"
  "/root/repo/tests/simnet/fault_injector_test.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/fault_injector_test.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/fault_injector_test.cpp.o.d"
  "/root/repo/tests/simnet/fleet_test.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/fleet_test.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/fleet_test.cpp.o.d"
  "/root/repo/tests/simnet/syslog_process_test.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/syslog_process_test.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/syslog_process_test.cpp.o.d"
  "/root/repo/tests/simnet/template_catalog_test.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/template_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/template_catalog_test.cpp.o.d"
  "/root/repo/tests/simnet/ticketing_test.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/ticketing_test.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/ticketing_test.cpp.o.d"
  "/root/repo/tests/simnet/types_test.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/types_test.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/types_test.cpp.o.d"
  "/root/repo/tests/simnet/vpe_profile_test.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/vpe_profile_test.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/vpe_profile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nfv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/logproc/CMakeFiles/nfv_logproc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nfv_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/nfv_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nfv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
