file(REMOVE_RECURSE
  "CMakeFiles/test_logproc.dir/logproc/dataset_test.cpp.o"
  "CMakeFiles/test_logproc.dir/logproc/dataset_test.cpp.o.d"
  "CMakeFiles/test_logproc.dir/logproc/signature_tree_test.cpp.o"
  "CMakeFiles/test_logproc.dir/logproc/signature_tree_test.cpp.o.d"
  "CMakeFiles/test_logproc.dir/logproc/tokenizer_test.cpp.o"
  "CMakeFiles/test_logproc.dir/logproc/tokenizer_test.cpp.o.d"
  "test_logproc"
  "test_logproc.pdb"
  "test_logproc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
