# Empty compiler generated dependencies file for test_logproc.
# This may be replaced when dependencies are built.
