# Empty dependencies file for test_ml_grad.
# This may be replaced when dependencies are built.
