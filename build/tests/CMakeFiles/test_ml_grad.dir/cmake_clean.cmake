file(REMOVE_RECURSE
  "CMakeFiles/test_ml_grad.dir/ml/gradient_check_test.cpp.o"
  "CMakeFiles/test_ml_grad.dir/ml/gradient_check_test.cpp.o.d"
  "CMakeFiles/test_ml_grad.dir/ml/matrix_test.cpp.o"
  "CMakeFiles/test_ml_grad.dir/ml/matrix_test.cpp.o.d"
  "test_ml_grad"
  "test_ml_grad.pdb"
  "test_ml_grad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_grad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
