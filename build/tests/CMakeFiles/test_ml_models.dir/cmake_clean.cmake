file(REMOVE_RECURSE
  "CMakeFiles/test_ml_models.dir/ml/autoencoder_test.cpp.o"
  "CMakeFiles/test_ml_models.dir/ml/autoencoder_test.cpp.o.d"
  "CMakeFiles/test_ml_models.dir/ml/hmm_test.cpp.o"
  "CMakeFiles/test_ml_models.dir/ml/hmm_test.cpp.o.d"
  "CMakeFiles/test_ml_models.dir/ml/kmeans_test.cpp.o"
  "CMakeFiles/test_ml_models.dir/ml/kmeans_test.cpp.o.d"
  "CMakeFiles/test_ml_models.dir/ml/ocsvm_test.cpp.o"
  "CMakeFiles/test_ml_models.dir/ml/ocsvm_test.cpp.o.d"
  "CMakeFiles/test_ml_models.dir/ml/optimizer_test.cpp.o"
  "CMakeFiles/test_ml_models.dir/ml/optimizer_test.cpp.o.d"
  "CMakeFiles/test_ml_models.dir/ml/pca_test.cpp.o"
  "CMakeFiles/test_ml_models.dir/ml/pca_test.cpp.o.d"
  "CMakeFiles/test_ml_models.dir/ml/sequence_model_test.cpp.o"
  "CMakeFiles/test_ml_models.dir/ml/sequence_model_test.cpp.o.d"
  "CMakeFiles/test_ml_models.dir/ml/serialize_test.cpp.o"
  "CMakeFiles/test_ml_models.dir/ml/serialize_test.cpp.o.d"
  "CMakeFiles/test_ml_models.dir/ml/som_test.cpp.o"
  "CMakeFiles/test_ml_models.dir/ml/som_test.cpp.o.d"
  "test_ml_models"
  "test_ml_models.pdb"
  "test_ml_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
