file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/detectors_test.cpp.o"
  "CMakeFiles/test_core.dir/core/detectors_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/mapper_test.cpp.o"
  "CMakeFiles/test_core.dir/core/mapper_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/parsed_fleet_test.cpp.o"
  "CMakeFiles/test_core.dir/core/parsed_fleet_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/streaming_test.cpp.o"
  "CMakeFiles/test_core.dir/core/streaming_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/vpe_clustering_test.cpp.o"
  "CMakeFiles/test_core.dir/core/vpe_clustering_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
