
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_ticket_scatter.cpp" "bench/CMakeFiles/bench_fig2_ticket_scatter.dir/bench_fig2_ticket_scatter.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_ticket_scatter.dir/bench_fig2_ticket_scatter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nfv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/logproc/CMakeFiles/nfv_logproc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nfv_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/nfv_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nfv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
