# Empty dependencies file for bench_fig1b_interarrival.
# This may be replaced when dependencies are built.
