# Empty dependencies file for bench_fig6_method_comparison.
# This may be replaced when dependencies are built.
