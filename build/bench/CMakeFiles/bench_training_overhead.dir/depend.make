# Empty dependencies file for bench_training_overhead.
# This may be replaced when dependencies are built.
