file(REMOVE_RECURSE
  "CMakeFiles/bench_training_overhead.dir/bench_training_overhead.cpp.o"
  "CMakeFiles/bench_training_overhead.dir/bench_training_overhead.cpp.o.d"
  "bench_training_overhead"
  "bench_training_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_training_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
