# Empty compiler generated dependencies file for bench_fig8_ticket_types.
# This may be replaced when dependencies are built.
