# Empty compiler generated dependencies file for bench_sec33_update_shift.
# This may be replaced when dependencies are built.
