file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_update_shift.dir/bench_sec33_update_shift.cpp.o"
  "CMakeFiles/bench_sec33_update_shift.dir/bench_sec33_update_shift.cpp.o.d"
  "bench_sec33_update_shift"
  "bench_sec33_update_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_update_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
