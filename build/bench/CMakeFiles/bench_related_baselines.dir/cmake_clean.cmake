file(REMOVE_RECURSE
  "CMakeFiles/bench_related_baselines.dir/bench_related_baselines.cpp.o"
  "CMakeFiles/bench_related_baselines.dir/bench_related_baselines.cpp.o.d"
  "bench_related_baselines"
  "bench_related_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
