# Empty dependencies file for bench_fig5_prc_window.
# This may be replaced when dependencies are built.
