# Empty dependencies file for bench_fig1a_ticket_types.
# This may be replaced when dependencies are built.
