# Empty compiler generated dependencies file for bench_fig3_cosine_similarity.
# This may be replaced when dependencies are built.
