# Empty dependencies file for bench_fig7_customization.
# This may be replaced when dependencies are built.
