file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_customization.dir/bench_fig7_customization.cpp.o"
  "CMakeFiles/bench_fig7_customization.dir/bench_fig7_customization.cpp.o.d"
  "bench_fig7_customization"
  "bench_fig7_customization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_customization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
